"""Per-machine binding of predecode artifacts into a threaded-dispatch engine.

The original interpreter walked every :class:`~repro.minic.ir.Instr` through a
chain of ``if op is Opcode.X`` tests, re-resolving ``attrs`` dict entries,
label maps and operand kinds on every execution.  Compilation is now split in
two: the **model-independent half** (decode facts, the slot-type fixpoint,
fusion decisions, shared superinstruction plans) lives in
:mod:`repro.interp.artifact` behind a process-level cache keyed by
``(function, pointer layout)``, and this module is the **binding step** that
closes a cached artifact over one concrete machine's model, memory, cache and
timing state (``docs/pipeline.md`` has the full picture).  Binding a function
produces a flat list of per-instruction closures ("handlers"):

* label targets are resolved to instruction indices at compile time, so a
  branch is just ``return target_index``;
* ``attrs`` lookups (operators, offsets, element sizes, callees) are hoisted
  into closure variables;
* operands are pre-classified — a :class:`Temp` becomes a register-slot read,
  an integer :class:`Const` becomes a hoisted immutable value, a
  :class:`GlobalRef` becomes a name lookup (kept at run time because the GC
  may rewrite globals between runs);
* per-instruction cycle costs are precomputed into a parallel ``costs`` list;
* temporaries live in a flat preallocated register list instead of a dict.

**Unboxed registers.**  A compile-time fixpoint analysis
(:func:`_analyze_slots`) identifies register slots that can only ever hold
*provenance-free scalar integers* of one static ``(width, signedness)``.
Those slots carry raw Python ints instead of :class:`IntVal` boxes: loads,
arithmetic, comparisons and casts between them never allocate — width
wrapping happens inline with the precomputed mask tables from
:mod:`repro.interp.values`.  Values are boxed (through the shared intern
pool) only at ABI boundaries: call arguments, return values, pointer
conversions, and any slot the analysis cannot prove scalar.  Provenance
semantics are untouchable by construction — any value that *could* carry
provenance (pointer-sized integers, ``ptrtoint`` results, call results,
anything a model hook might inspect) stays boxed.

**Pair fusion.**  When an address-producing instruction (``field``, ``gep``,
``ptradd``) or a comparison feeds exactly one consumer and that consumer is
the next instruction (``load``/``store``/``cjump``), the pair compiles into a
single handler: the intermediate ``PtrVal``/``IntVal`` is never materialised
and a full dispatch round-trip disappears.  The fused handler still charges
both instructions' counts and cycles at the same points the unfused pair
would (the consumer's instruction/cost before its first observable effect),
so metrics and trap states are bit-identical.  Fusion only engages for
models with the default pointer-move policy; everything else takes the
unfused handlers.

The hot load/store handlers also inline the L1-hit path of the cache model
and the single-page fast path of :class:`~repro.sim.memory.TaggedMemory`
(same counters, same LRU updates, same fall-backs — the slow paths call the
originals), and reconstruction of metadata-free pointer loads is memoised for
models where it is a pure function of the raw address.

**Basic-block superinstructions.**  On top of the per-instruction handlers,
:func:`_install_superinstructions` segments each compiled function at labels
and control transfers and compiles every straight-line run of two or more
entries into **one generated-source block handler**
(:func:`repro.interp.hotgen.compile_block`).  Inside a block, raw-register
arithmetic/compare/cast work, inline pointer moves and scalar loads/stores
are emitted as straight-line Python threading values through locals (a slot
read once stays in a local until something rewrites it); other pure handlers
(conversions, boxed arithmetic) and the trap-capable pointer ops/calls are
invoked as closure calls without a dispatch round-trip.  Instruction counts
and cycle costs are batched per **charge group**: pure entries run
immediately but defer their charges, and every trap-capable entry
(load/store/call/division/alloca/``ptrdiff``) flushes the deferred charges
plus its own — one batched add and budget check — *before* it executes.
Counter exactness is preserved by construction:

* whenever an entry that can trap runs, everything up to and including it
  has been charged and nothing after it has, so the counters at any trap
  equal exactly what single-step dispatch would have charged;
* a charge batch that would overrun the instruction budget is replayed
  entry-by-entry (:func:`_budget_replay`) — count, budget check, cycle cost,
  exactly like the dispatch loop — raising at the precise single-step trap
  point.

``SUPERINSTRUCTIONS`` toggles the block compiler (the equivalence test flips
it to compare engines on the same machine build).  Machines come in two
superinstruction flavours: the default compiles model-specialized block
source per machine (fastest execution — every splice above applies), while
``AbstractMachine(shared_blocks=True)`` binds the artifact's cached
model-independent block plans — raw-register work spliced, memory ops and
pointer moves as closure-call slots — with **tiered binding**: a function
binds its blocks only after ``HOT_CALL_THRESHOLD`` calls, so one-shot code
(the differential sweep) never pays block compilation.  Both flavours are
observationally identical; ``tests/test_predecode_cache.py`` pins it.

The engine is **observationally identical** to the old dispatch chain: the
same instruction/cycle/memory-access counts, the same outputs and the same
traps for every memory model (``tests/test_metrics_golden.py`` pins this).

Frame layout: handlers receive one ``frame`` list shaped as
``[args, alloca_slots, return_value, reg0, reg1, ..., scratch]``.  Frames
are pooled per :class:`CompiledFunction` (reset on release), so a call does
not round-trip Python's allocator for the register file or the alloca list.
"""

from __future__ import annotations

from functools import partial

from repro.common.errors import InterpreterError, UndefinedBehaviorError
from repro.interp.artifact import (
    BINOP_EXPR as _BINOP_EXPR,
    BLOCK_LIMIT as _BLOCK_LIMIT,
    CMP_FUNCS as _CMP_FUNCS,
    FRAME_RESERVED as _FRAME_RESERVED,
    INT_BINOPS as _INT_BINOPS,
    get_artifact,
)
from repro.interp.intrinsics import INTRINSICS
from repro.interp.models.base import MemoryModel
from repro.interp.models.mpx import MpxModel
from repro.interp.models.pdp11 import Pdp11Model
from repro.interp.hotgen import (
    bind_block,
    compile_block,
    load_maker,
    packer_for,
    store_maker,
    unpacker_for,
)
from repro.interp.shadow import PAGE_SHIFT
from repro.interp.values import (
    FALSE_I32,
    INTERN_MAX,
    INTERN_MIN,
    MASKS,
    MODULI,
    PERM_ALL,
    SIGN_MIN,
    TRUE_I32,
    IntVal,
    Provenance,
    PtrVal,
    intern_table,
)
from repro.minic.ir import Const, Function, GlobalRef, Opcode, Temp
from repro.minic.typesys import IntType, PointerType, Qualifiers

#: sentinel stored in unwritten register slots (None is a legitimate value).
UNDEF = object()

#: basic-block superinstruction compilation (see module docstring).  Flipped
#: to False by the engine-equivalence test to build a single-step engine on
#: the same machine; production machines always compile with it on.
SUPERINSTRUCTIONS = True

#: calls before a shared-block machine binds a function's superinstructions
#: (block install is observationally invisible, so the threshold only trades
#: binding cost against dispatch speed; specialized machines bind eagerly).
HOT_CALL_THRESHOLD = 2

#: indices of the bookkeeping slots at the head of every frame.
_ARGS, _ALLOCAS, _RET = 0, 1, 2

_ADDRESS_MASK = (1 << 64) - 1

#: interned comparison results for boxed destinations (canonical instances
#: shared with the block compiler; see values.TRUE_I32/FALSE_I32).
_TRUE = TRUE_I32
_FALSE = FALSE_I32

#: models whose load_pointer_without_metadata is a pure function of the raw
#: address (no allocator lookup), so the resulting PtrVal can be memoised.
_PURE_PTR_LOADERS = (
    MemoryModel.load_pointer_without_metadata,
    Pdp11Model.load_pointer_without_metadata,
    MpxModel.load_pointer_without_metadata,
)


class CompiledFunction:
    """The predecoded form of one IR function, bound to one machine."""

    __slots__ = ("function", "paired", "size", "nregs", "nallocas",
                 "frame_proto", "pool", "alloca_proto", "blocks",
                 "block_fallbacks", "pending_blocks", "calls",
                 "builder", "built")

    def __init__(self, function: Function, handlers: list, costs: list,
                 nregs: int, nallocas: int) -> None:
        self.function = function
        #: (handler, cost) pairs: one dispatch-loop index instead of two.
        self.paired = list(zip(handlers, costs))
        self.size = len(self.paired)
        self.nregs = nregs
        self.nallocas = nallocas
        #: template frame: bookkeeping slots + registers, copied per call.
        self.frame_proto = [None, None, None] + [UNDEF] * nregs
        #: free-list of released frames (reset to frame_proto on release, the
        #: alloca list kept attached) — see AbstractMachine._execute.
        self.pool: list = []
        self.alloca_proto = (None,) * nallocas
        #: installed superinstructions: (start_pc, paired_entries, ir_instrs).
        self.blocks: list[tuple[int, int, int]] = []
        #: leader pc -> the single-step (handler, cost) a block replaced, so
        #: the machine can demote a misbehaving block handler back to
        #: instruction-at-a-time dispatch (AbstractMachine._execute).
        self.block_fallbacks: dict[int, tuple] = {}
        #: shared-block machines defer block binding until the function has
        #: run HOT_CALL_THRESHOLD times: a zero-arg installer closure, or
        #: None once installed (or when blocks are bound eagerly/disabled).
        self.pending_blocks = None
        self.calls = 0
        #: lazy-binding support (machines constructed with
        #: ``lazy_binding=True``): ``builder(index) -> (handler, cost, desc)``
        #: builds the real closure for one pc, ``built`` memoizes the
        #: handlers already materialized.  Both stay ``None`` on eagerly
        #: bound machines.
        self.builder = None
        self.built: dict[int, object] | None = None

    def materialize(self, index: int):
        """The real handler for pc ``index``, built and patched on first use.

        Lazy-binding machines fill ``paired`` with cheap dispatch thunks
        (:func:`_lazy_step`) and only pay for a pc's closure when it first
        executes — or when a shared-block install needs it as an ``h<k>``
        binding.  Building has no machine-observable effect and the dispatch
        loop charges count/cycles *before* invoking the thunk, so laziness is
        invisible to counters, traps and the budget (pinned by
        ``tests/test_lockstep.py``).  If ``index`` is currently a demoted
        block's leader the single-step fallback tuple is patched instead of
        ``paired`` (whose entry is the installed block handler).
        """
        built = self.built
        handler = built.get(index)
        if handler is None:
            handler = built[index] = self.builder(index)[0]
            entry = self.block_fallbacks.get(index)
            if entry is not None:
                self.block_fallbacks[index] = (handler, entry[1])
            else:
                self.paired[index] = (handler, self.paired[index][1])
        return handler


def _lazy_step(code: CompiledFunction, index: int, frame):
    """Dispatch thunk installed at every not-yet-built pc of a lazy machine."""
    return code.materialize(index)(frame)


# ---------------------------------------------------------------------------
# Operand predecoding
# ---------------------------------------------------------------------------


def _const_value(machine, operand: Const):
    """Hoisted runtime value of a constant, or None when it needs run-time state."""
    ctype = operand.ctype
    if isinstance(ctype, PointerType):
        if operand.value == 0:
            return machine.model.null_pointer()
        return None  # non-null pointer constant: conversion consults the allocator
    size = ctype.size(machine.ctx) if isinstance(ctype, IntType) else 8
    signed = getattr(ctype, "signed", True)
    pointer_sized = isinstance(ctype, IntType) and ctype.is_pointer_sized
    return IntVal(operand.value, bytes=min(size, 8), signed=signed, pointer_sized=pointer_sized)


def _reader(machine, operand, slot_types):
    """Compile an operand into a ``frame -> boxed value`` accessor.

    Unboxed slots are boxed on read (through the intern pool) — this is the
    raw-to-ABI boundary for contexts that need a real :class:`IntVal`.
    """
    kind = type(operand)
    if kind is Temp:
        slot = operand.index + _FRAME_RESERVED
        label = str(operand)
        t = slot_types.get(operand.index)
        if t is not None:
            width, signed = t
            table = intern_table(width, signed)

            def read_temp_raw(frame, slot=slot, width=width, signed=signed,
                              table=table, label=label):
                value = frame[slot]
                if type(value) is int:
                    if INTERN_MIN <= value <= INTERN_MAX:
                        return table[value - INTERN_MIN]
                    return IntVal(value, width, signed)
                raise InterpreterError(f"use of undefined temporary {label}")

            return read_temp_raw

        def read_temp(frame):
            value = frame[slot]
            if value is UNDEF:
                raise InterpreterError(f"use of undefined temporary {label}")
            return value

        return read_temp
    if kind is Const:
        hoisted = _const_value(machine, operand)
        if hoisted is not None:
            return lambda frame: hoisted
        as_int = IntVal(operand.value, bytes=8, signed=False)
        int_to_ptr = machine.model.int_to_ptr
        allocator = machine.allocator
        return lambda frame: int_to_ptr(as_int, allocator)
    if kind is GlobalRef:
        name = operand.name
        globals_map = machine.globals

        def read_global(frame):
            try:
                return globals_map[name]
            except KeyError:
                raise InterpreterError(f"use of unknown global {name!r}") from None

        return read_global
    raise InterpreterError(f"cannot evaluate operand {operand!r}")


def _ptr_reader(machine, operand, slot_types):
    """An operand accessor that coerces integers to pointers (``_pointer_operand``)."""
    int_to_ptr = machine.model.int_to_ptr
    allocator = machine.allocator

    if type(operand) is Temp and operand.index not in slot_types:
        # Fused register read + pointer coercion (one call instead of two).
        slot = operand.index + _FRAME_RESERVED
        label = str(operand)

        def read_ptr(frame):
            value = frame[slot]
            kind = type(value)
            if kind is PtrVal:
                return value
            if kind is IntVal:
                return int_to_ptr(value, allocator)
            if value is UNDEF:
                raise InterpreterError(f"use of undefined temporary {label}")
            raise InterpreterError(f"expected a pointer, got {value!r}")

        return read_ptr

    read = _reader(machine, operand, slot_types)

    def read_ptr(frame):
        value = read(frame)
        if type(value) is PtrVal:
            return value
        if type(value) is IntVal:
            return int_to_ptr(value, allocator)
        raise InterpreterError(f"expected a pointer, got {value!r}")

    return read_ptr


def _qualifier_appliers(machine, ptr_type: PointerType) -> tuple:
    """The model hooks a pointer of ``ptr_type`` passes through, in order."""
    appliers = []
    if ptr_type.qualifiers & Qualifiers.INPUT:
        appliers.append(machine.model.apply_input_qualifier)
    if ptr_type.qualifiers & Qualifiers.OUTPUT:
        appliers.append(machine.model.apply_output_qualifier)
    if ptr_type.pointee.is_const:
        appliers.append(machine.model.apply_const)
    return tuple(appliers)


def _is_pointer_sized_int(ctype) -> bool:
    return isinstance(ctype, IntType) and ctype.is_pointer_sized


#: delta descriptor for unfused memory ops: address = pointer.address.
_NO_DELTA = (0, 0, 0, None)


def compile_function(machine, function: Function) -> CompiledFunction:
    """Bind ``function``'s predecode artifact to one concrete machine.

    The model-independent half (decode facts, slot-type fixpoint, fusion,
    shared block plans) comes from the process-level artifact cache
    (:mod:`repro.interp.artifact`); this function closes it over the
    machine's model, memory, cache and timing state.
    """
    instrs = function.instrs
    artifact = get_artifact(function, machine.ctx)
    labels = artifact.labels
    timing = machine.config.timing
    base_cost = timing.base_instruction_cost
    branch_cost = timing.branch_cost
    call_cost = timing.call_cost
    stop = len(instrs)

    # A model that overrides the provenance hook must see every operand, so
    # arithmetic results cannot be proven provenance-free at compile time.
    fast_noprov = (type(machine.model).propagate_provenance
                   is MemoryModel.propagate_provenance)
    #: temp index -> (width, signed) for slots that carry raw Python ints.
    slot_types = artifact.slot_types(fast_noprov)

    nregs = artifact.nregs
    scratch = artifact.scratch

    # Machine state bound once per compilation.
    model = machine.model
    ctx = machine.ctx
    memory = machine.memory
    allocator = machine.allocator
    hierarchy_access = machine.hierarchy.access
    collect_timing = machine.collect_timing
    shadow = machine.shadow
    shadow_entries = shadow.entries
    shadow_pages = shadow.pages
    shadow_get = shadow_entries.get
    uses_shadow = model.uses_shadow
    clear_shadow = uses_shadow and model.clear_shadow_on_data_store
    check_access = model.check_access
    int_to_ptr = model.int_to_ptr
    ptr_to_int = model.ptr_to_int
    ptr_offset = model.ptr_offset
    pointer_bytes = model.pointer_bytes
    read_small = memory.read_small
    write_small = memory.write_small
    write_ptr_raw = memory.write_ptr_raw
    load_ptr_no_meta = model.load_pointer_without_metadata
    reconcile = model.reconcile_loaded_pointer
    propagate_provenance = model.propagate_provenance
    M64 = _ADDRESS_MASK

    # Inline fast path over TaggedMemory's page store (single-page accesses;
    # everything else falls back to the metered methods above).
    mem_pages = memory._pages
    pages_get = mem_pages.get
    mem_tags = memory._tags
    mem_size = memory._size
    page_size = memory.PAGE_SIZE
    page_mask = memory._PAGE_MASK
    page_shift = memory._PAGE_SHIFT

    # Inline fast path for the cache model's single-line L1 hit.  The captured
    # set list / stats object stay valid because CacheLevel.reset() mutates in
    # place.  Timestamps stored in the per-set dicts are never read (LRU order
    # is dict order), so the inline path stores 0 instead of a clock.
    hier = machine.hierarchy
    l1 = hier.l1
    l1_sets = l1._sets
    l1_stats = l1.stats
    l2_access = hier.l2.access
    line_bytes = l1._line_bytes
    num_sets = l1._num_sets
    assoc = l1._associativity
    lat_l1 = hier._l1_hit_latency
    lat_l2 = hier._l2_hit_latency
    lat_dram = hier._dram_latency
    inline_cache = (line_bytes & (line_bytes - 1) == 0
                    and num_sets & (num_sets - 1) == 0)
    line_shift = line_bytes.bit_length() - 1
    nsets_mask = num_sets - 1
    nsets_shift = num_sets.bit_length() - 1

    # When the model keeps the default pointer-arithmetic policy (cursor moves
    # freely, bounds unchanged), pointer moves can be constructed inline
    # instead of dispatching through model.ptr_offset -> PtrVal.moved_by.
    inline_moves = type(model).ptr_offset is MemoryModel.ptr_offset
    inline_field = (inline_moves
                    and type(model).field_address is MemoryModel.field_address
                    and not model.narrow_field_bounds)
    inline_ptrcmp = type(model).ptr_compare is MemoryModel.ptr_compare
    # The base reconciliation policy (trust the shadow entry when the raw
    # address still matches, else reconstruct without metadata) is inlined;
    # models that override it keep the call.
    inline_reconcile = (type(model).reconcile_loaded_pointer
                        is MemoryModel.reconcile_loaded_pointer)
    # Dereference checks are inlined for the two known check policies; the
    # inline fast path only covers accesses the full check would *pass* (and
    # returns the same effective address) — anything unusual falls back to the
    # model's check_access, so traps, messages and trap counters are identical.
    model_check = type(model).check_access
    if model_check is MemoryModel.check_access:
        check_kind = 1
    elif model_check is Pdp11Model.check_access:
        check_kind = 2
    else:
        check_kind = 0

    # Static-facts shadow fast path (repro.staticcheck.facts).  A
    # shadow-clearing model may skip per-store shadow bookkeeping for stores
    # rooted at a proven pointer-free, never-escaping alloca — but only once
    # the alloca's address range is probed clean *for this activation*
    # (stack addresses are reused across frames and pop_frame never purges
    # shadow).  Soundness needs the base access-check policy: it rejects
    # dangling and forged pointers before any shadow mutation, so no valid
    # pointer into the never-escaping object exists besides the in-function
    # aliases, and a probed-clean range provably stays clean.  The
    # per-activation flag lives in a dedicated frame slot; gating every safe
    # alloca into the straight-line entry prefix guarantees the flag is
    # fully assigned before any skipped store can execute.
    facts = getattr(function, "static_facts", None)
    skip_shadow_stores: frozenset = frozenset()
    safe_alloca_pcs: frozenset = frozenset()
    first_safe_pc = -1
    shadow_flag = artifact.shadow_flag
    if (facts is not None and facts.safe_stores and facts.safe_allocas
            and clear_shadow and model_check is MemoryModel.check_access):
        first_transfer = stop
        for pc_, instr_ in enumerate(instrs):
            if instr_.op in (Opcode.LABEL, Opcode.JUMP, Opcode.CJUMP,
                             Opcode.RET):
                first_transfer = pc_
                break
        if max(facts.safe_allocas) < first_transfer:
            skip_shadow_stores = facts.safe_stores
            safe_alloca_pcs = facts.safe_allocas
            first_safe_pc = min(safe_alloca_pcs)

    # Metadata-free pointer loads are pure per raw address for these models;
    # share one memo across the machine's compiled functions.
    if type(model).load_pointer_without_metadata in _PURE_PTR_LOADERS:
        ptr_memo = machine._ptr_load_memo
        ptr_memo_get = ptr_memo.get
    else:
        ptr_memo = None
        ptr_memo_get = None

    def ptr_parts(operand):
        """(slot, coerce) for inline Temp pointer reads, or (None, reader).

        With a slot, handlers do ``pointer = frame[slot]`` and call ``coerce``
        only when the value is not already a PtrVal; otherwise ``coerce`` is a
        full reader closure invoked with the frame.
        """
        if type(operand) is Temp and operand.index not in slot_types:
            slot = operand.index + _FRAME_RESERVED
            label = str(operand)

            def coerce(value, label=label):
                if type(value) is IntVal:
                    return int_to_ptr(value, allocator)
                if value is UNDEF:
                    raise InterpreterError(f"use of undefined temporary {label}")
                raise InterpreterError(f"expected a pointer, got {value!r}")

            return slot, coerce
        return None, _ptr_reader(machine, operand, slot_types)

    def reader(operand):
        return _reader(machine, operand, slot_types)

    # Raw-operand descriptors come precomputed from the artifact (the same
    # list every other machine of this layout binds against); the id-keyed
    # map lets the operand-shaped call sites below stay unchanged.
    arg_raw_lists = artifact.arg_raws(fast_noprov)
    raw_by_operand: dict[int, tuple | None] = {}
    for instr_raws, instr_ in zip(arg_raw_lists, instrs):
        for arg_, desc_ in zip(instr_.args, instr_raws):
            raw_by_operand[id(arg_)] = desc_

    def raw_operand(operand):
        return raw_by_operand[id(operand)]

    def boxed_operand(operand):
        """(mode, src, label): 0 = boxed Temp slot, 1 = hoisted value, 2 = reader."""
        if type(operand) is Temp and operand.index not in slot_types:
            return 0, operand.index + _FRAME_RESERVED, str(operand)
        if type(operand) is Const:
            hoisted = _const_value(machine, operand)
            if hoisted is not None:
                return 1, hoisted, None
        return 2, reader(operand), None

    # ------------------------------------------------------------------
    # Pair-fusion prepass (memoized on the artifact)
    # ------------------------------------------------------------------

    # Producer index -> ("mem", delta) or ("cmp",); the consumer at index+1
    # keeps its (unreachable) stand-alone handler so pc layout is unchanged.
    # Fusion MUST be identical in both block flavours: the fused pair
    # charges both halves' costs up front, so restricting fusion would move
    # the cycle counter observed at a budget trap on the consumer half.
    shared_blocks = machine.shared_blocks
    fused = artifact.fusion(inline_moves, inline_field, fast_noprov)

    # ------------------------------------------------------------------
    # Memory-op generators (source-specialized; see repro.interp.hotgen)
    # ------------------------------------------------------------------

    # Built once per compilation and copied per memory instruction — the
    # machine-level values never change within one binding pass.
    proto_bindings = {
        "pslot": None, "pcoerce": None, "d1": 0, "d2": 0, "dmsg": "",
        "base_cost": base_cost, "check_access": check_access,
        "size": 0, "size_m1": 0, "line_shift": line_shift,
        "nsets_mask": nsets_mask, "nsets_shift": nsets_shift, "assoc": assoc,
        "lat_l1": lat_l1, "lat_l2": lat_l2, "lat_dram": lat_dram,
        "l1_sets": l1_sets, "l1_stats": l1_stats, "l2_access": l2_access,
        "hier": hier, "hierarchy_access": hierarchy_access, "machine": machine,
        "page_mask": page_mask, "page_size": page_size, "page_shift": page_shift,
        "mem_size": mem_size, "pages_get": pages_get, "mem_pages": mem_pages,
        "read_small": read_small, "write_small": write_small,
        "write_ptr_raw": write_ptr_raw, "mem_tags": mem_tags,
        "shadow_get": shadow_get, "shadow_entries": shadow_entries,
        "shadow_pages": shadow_pages, "shadow_page_shift": PAGE_SHIFT,
        "ptr_memo": ptr_memo, "ptr_memo_get": ptr_memo_get,
        "load_ptr_no_meta": load_ptr_no_meta, "allocator": allocator,
        "int_to_ptr": int_to_ptr, "reconcile": reconcile,
        "appliers": (), "table": None, "out": 0, "next_pc": 0,
        "signed": True, "read_value": None, "ptr_to_int": ptr_to_int,
        "coerce_bytes": None, "coerce_signed": True, "size_mask": 0,
        "comb_mask": 0, "const_raw": 0, "vslot": 0, "vmsg": "", "pad": b"",
        "span": 8, "mem_unpack": None, "mem_pack": None,
        "fname": function.name,
    }

    def bindings() -> dict:
        """Fresh binding dict for a hotgen-generated handler (full name set)."""
        return dict(proto_bindings)

    def gen_load(instr, ptr_operand, delta, extra, next_pc, out):
        """(handler, mem-desc) for a LOAD; ``delta``/``extra`` = fused producer."""
        ctype = instr.ctype
        pslot, pcoerce = ptr_parts(ptr_operand)
        dkind, d1, d2, dlabel = delta
        b = bindings()
        b["pslot"] = pslot
        b["pcoerce"] = pcoerce
        b["d1"] = d1
        b["d2"] = d2
        b["dmsg"] = f"use of undefined temporary {dlabel}"
        b["out"] = out
        b["next_pc"] = next_pc
        appliers = ()
        if isinstance(ctype, PointerType) or _is_pointer_sized_int(ctype):
            size = pointer_bytes
            if isinstance(ctype, PointerType):
                kind = "ptr"
                appliers = _qualifier_appliers(machine, ctype)
            else:
                kind = "psint"
        else:
            size = max(ctype.size(ctx), 1)
            if instr.dest is not None and instr.dest.index in slot_types:
                kind = "raw"
            else:
                kind = "box"
                b["table"] = intern_table(size, getattr(ctype, "signed", True))
        b["size"] = size
        b["size_m1"] = size - 1
        signed = getattr(ctype, "signed", True)
        b["signed"] = signed
        b["appliers"] = appliers
        mem_unpack = (unpacker_for(8, False) if kind in ("ptr", "psint")
                      else unpacker_for(size, signed))
        b["mem_unpack"] = mem_unpack
        shape = (kind, pslot is not None, dkind, extra, check_kind,
                 collect_timing, inline_cache, uses_shadow,
                 ptr_memo is not None, inline_reconcile, len(appliers),
                 mem_unpack is not None)
        return load_maker(shape)(b), ("mem", out, "load", shape, b)

    def gen_store(instr, ptr_operand, delta, extra, next_pc, clear=clear_shadow):
        """(handler, mem-desc) for a STORE; ``delta``/``extra`` = fused producer.

        ``clear`` overrides the model-wide shadow-clear policy for the
        static-facts fast path (a provably clean range needs no clearing).
        """
        ctype = instr.ctype
        pslot, pcoerce = ptr_parts(ptr_operand)
        dkind, d1, d2, dlabel = delta
        param_index = instr.attrs.get("param_index")
        b = bindings()
        b["pslot"] = pslot
        b["pcoerce"] = pcoerce
        b["d1"] = d1
        b["d2"] = d2
        b["dmsg"] = f"use of undefined temporary {dlabel}"
        b["next_pc"] = next_pc

        if param_index is not None:
            def read_value(frame, param_index=param_index):
                return frame[_ARGS][param_index]
        elif (isinstance(ctype, PointerType) or _is_pointer_sized_int(ctype)
              or raw_operand(instr.args[1]) is None):
            read_value = reader(instr.args[1])
        else:
            read_value = None

        if isinstance(ctype, PointerType) or _is_pointer_sized_int(ctype):
            span = pointer_bytes if pointer_bytes > 8 else 8
            b["size"] = pointer_bytes
            b["size_m1"] = pointer_bytes - 1
            b["span"] = span
            b["pad"] = bytes(span - 8)
            b["read_value"] = read_value
            mem_pack = packer_for(8)
            b["mem_pack"] = mem_pack
            shape = ("ptr", pslot is not None, dkind, extra, check_kind,
                     collect_timing, inline_cache, clear, uses_shadow,
                     2, isinstance(ctype, PointerType), span > 8,
                     mem_pack is not None)
            return store_maker(shape)(b), ("mem", None, "store", shape, b)

        size = max(ctype.size(ctx), 1)
        b["size"] = size
        b["size_m1"] = size - 1
        b["size_mask"] = MASKS[size] if size <= 8 else (1 << (8 * size)) - 1
        raw_desc = raw_operand(instr.args[1]) if param_index is None else None
        coerce_flag = False
        if raw_desc is not None:
            vkind, vpayload, (vwidth, _vs), vlabel = raw_desc
            comb_mask = MASKS[min(vwidth, size)] if size <= 8 else MASKS[vwidth]
            if vkind == "const":
                b["const_raw"] = vpayload & comb_mask
                value_mode = 0
            else:
                b["vslot"] = vpayload
                b["vmsg"] = f"use of undefined temporary {vlabel}"
                b["comb_mask"] = comb_mask
                value_mode = 1
        else:
            b["read_value"] = read_value
            coerce_bytes = min(ctype.size(ctx), 8) if isinstance(ctype, IntType) else None
            b["coerce_bytes"] = coerce_bytes
            b["coerce_signed"] = getattr(ctype, "signed", True)
            value_mode = 2
            coerce_flag = coerce_bytes is not None
        mem_pack = packer_for(size)
        b["mem_pack"] = mem_pack
        shape = ("scalar", pslot is not None, dkind, extra, check_kind,
                 collect_timing, inline_cache, clear, uses_shadow,
                 value_mode, coerce_flag, False, mem_pack is not None)
        return store_maker(shape)(b), ("mem", None, "store", shape, b)

    def gen_flagged_store(instr, ptr_operand, delta, extra, next_pc):
        """Store rooted at a safe alloca: skip shadow clearing while the
        activation's range is proven clean (flag == 1), else full path.
        The flag is always a 0/1 int by the time a rooted store runs — its
        address temp is produced after the (entry-prefix) allocas."""
        fast, _ = gen_store(instr, ptr_operand, delta, extra, next_pc,
                            clear=False)
        slow, _ = gen_store(instr, ptr_operand, delta, extra, next_pc,
                            clear=True)

        def handler(frame, fast=fast, slow=slow, shadow_flag=shadow_flag):
            if frame[shadow_flag] == 1:
                return fast(frame)
            return slow(frame)

        return handler

    def gen_cmp_branch(cmp_instr, cjump_instr):
        """Fused CMP+CJUMP: compare and branch in one handler."""
        operator = cmp_instr.attrs["operator"]
        compare = _CMP_FUNCS[operator]
        then_pc = labels[cjump_instr.attrs["then"]]
        else_pc = labels[cjump_instr.attrs["else"]]
        ptr_compare = model.ptr_compare
        raw_left = raw_operand(cmp_instr.args[0])
        raw_right = raw_operand(cmp_instr.args[1])
        if raw_left is not None and raw_right is not None:
            lkind, lpayload, _lt, llabel = raw_left
            rkind, rpayload, _rt, rlabel = raw_right

            def handler(frame, compare=compare, machine=machine,
                        then_pc=then_pc, else_pc=else_pc):
                if lkind == "slot":
                    a = frame[lpayload]
                    if type(a) is not int:
                        raise InterpreterError(f"use of undefined temporary {llabel}")
                else:
                    a = lpayload
                if rkind == "slot":
                    b = frame[rpayload]
                    if type(b) is not int:
                        raise InterpreterError(f"use of undefined temporary {rlabel}")
                else:
                    b = rpayload
                result = compare(a, b)
                machine.instructions = icount = machine.instructions + 1
                if icount > machine.max_instructions:
                    raise InterpreterError(
                        f"instruction budget of {machine.max_instructions} "
                        f"exhausted in {function.name}")
                return then_pc if result else else_pc

            return handler

        lmode, lsrc, llabel = boxed_operand(cmp_instr.args[0])
        rmode, rsrc, rlabel = boxed_operand(cmp_instr.args[1])

        def handler(frame, lmode=lmode, lsrc=lsrc, llabel=llabel, rmode=rmode,
                    rsrc=rsrc, rlabel=rlabel, compare=compare,
                    ptr_compare=ptr_compare, operator=operator, machine=machine,
                    then_pc=then_pc, else_pc=else_pc):
            if lmode == 0:
                left = frame[lsrc]
                if left is UNDEF:
                    raise InterpreterError(f"use of undefined temporary {llabel}")
            elif lmode == 1:
                left = lsrc
            else:
                left = lsrc(frame)
            if rmode == 0:
                right = frame[rsrc]
                if right is UNDEF:
                    raise InterpreterError(f"use of undefined temporary {rlabel}")
            elif rmode == 1:
                right = rsrc
            else:
                right = rsrc(frame)
            left_is_ptr = type(left) is PtrVal
            if left_is_ptr and type(right) is PtrVal and not inline_ptrcmp:
                result = ptr_compare(left, right, operator)
            else:
                result = compare(left.address if left_is_ptr else left.value,
                                 right.address if type(right) is PtrVal else right.value)
            machine.instructions = icount = machine.instructions + 1
            if icount > machine.max_instructions:
                raise InterpreterError(
                    f"instruction budget of {machine.max_instructions} "
                    f"exhausted in {function.name}")
            return then_pc if result else else_pc

        return handler

    # ------------------------------------------------------------------
    # Main compilation loop
    # ------------------------------------------------------------------

    # ALLOCA register slots are assigned in pc order; precomputing the map
    # keeps the per-index builder below order-independent, which the lazy
    # path needs (a run may reach pc 17's alloca without ever building pc 3).
    alloca_slots: dict[int, int] = {}
    for _pc, _instr in enumerate(instrs):
        if _instr.op is Opcode.ALLOCA:
            alloca_slots[_pc] = len(alloca_slots)

    def build(index: int):
        """Bind one pc: ``(handler, cost, desc)``.

        ``desc`` is the per-entry descriptor for the block compiler: how
        (whether) this handler may join a superinstruction.  None = terminal
        (may trap or transfer control; ends any block it appears in).
        """
        instr = instrs[index]
        op = instr.op
        next_pc = index + 1
        dest = instr.dest.index + _FRAME_RESERVED if instr.dest is not None else None
        dest_type = slot_types.get(instr.dest.index) if instr.dest is not None else None
        cost = base_cost
        handler = None
        desc = None
        fusion = fused.get(index)

        if fusion is not None:
            consumer = instrs[index + 1]
            if fusion[0] == "mem":
                cost = base_cost + base_cost  # both halves, charged up front
                delta = fusion[1]
                if consumer.op is Opcode.LOAD:
                    consumer_out = (consumer.dest.index + _FRAME_RESERVED
                                    if consumer.dest is not None else scratch)
                    handler, desc = gen_load(consumer, instr.args[0], delta, True,
                                             index + 2, consumer_out)
                elif index + 1 in skip_shadow_stores:
                    handler = gen_flagged_store(consumer, instr.args[0], delta,
                                                True, index + 2)
                    desc = ("ext", None)
                else:
                    handler, desc = gen_store(consumer, instr.args[0], delta, True,
                                              index + 2)
            else:
                cost = base_cost + branch_cost  # both halves, charged up front
                handler = gen_cmp_branch(instr, consumer)
                desc = None  # branches on its own: ends any block
            return handler, cost, desc

        if op is Opcode.LABEL or op is Opcode.NOP:
            cost = 0
            handler = _make_fallthrough(next_pc)
            desc = ("label",)

        elif op is Opcode.JUMP:
            cost = branch_cost
            target = labels[instr.attrs["target"]]
            handler = _make_fallthrough(target)
            desc = ("goto", target)

        elif op is Opcode.CJUMP:
            cost = branch_cost
            then_pc = labels[instr.attrs["then"]]
            else_pc = labels[instr.attrs["else"]]
            raw = raw_operand(instr.args[0])
            if raw is not None and raw[0] == "slot":
                _, slot, _, label = raw
                desc = ("cjump_raw", slot, label, then_pc, else_pc)

                def handler(frame, slot=slot, label=label, then_pc=then_pc, else_pc=else_pc):
                    condition = frame[slot]
                    if type(condition) is int:
                        return then_pc if condition else else_pc
                    raise InterpreterError(f"use of undefined temporary {label}")
            elif raw is not None:
                target = then_pc if raw[1] else else_pc
                handler = _make_fallthrough(target)
                desc = ("goto", target)
            else:
                read_cond = reader(instr.args[0])

                def handler(frame, read_cond=read_cond, then_pc=then_pc, else_pc=else_pc):
                    condition = read_cond(frame)
                    if type(condition) is IntVal:
                        return then_pc if condition.value != 0 else else_pc
                    return else_pc if condition.is_null else then_pc

        elif op is Opcode.RET:
            if instr.args:
                # Raw operands are boxed here: the return value crosses back
                # into the caller's (untyped) destination slot.
                operand = instr.args[0]
                if type(operand) is Temp:
                    slot = operand.index + _FRAME_RESERVED
                    label = str(operand)
                    slot_type = slot_types.get(operand.index)
                    if slot_type is None:
                        def handler(frame, slot=slot, label=label, stop=stop):
                            value = frame[slot]
                            if value is UNDEF:
                                raise InterpreterError(f"use of undefined temporary {label}")
                            frame[_RET] = value
                            return stop
                    else:
                        width, signed = slot_type
                        table = intern_table(width, signed)

                        def handler(frame, slot=slot, label=label, width=width,
                                    signed=signed, table=table, stop=stop):
                            value = frame[slot]
                            if type(value) is not int:
                                raise InterpreterError(f"use of undefined temporary {label}")
                            if INTERN_MIN <= value <= INTERN_MAX:
                                frame[_RET] = table[value - INTERN_MIN]
                            else:
                                frame[_RET] = IntVal(value, width, signed)
                            return stop
                else:
                    read_value = reader(instr.args[0])

                    def handler(frame, read_value=read_value, stop=stop):
                        frame[_RET] = read_value(frame)
                        return stop
            else:
                handler = _make_fallthrough(stop)
                desc = ("goto", stop)

        elif op is Opcode.ALLOCA:
            slot = alloca_slots[index]
            size = instr.attrs.get("size", 8)
            alloc_type = instr.attrs.get("alloc_type")
            alignment = max(8, alloc_type.alignment(ctx) if alloc_type is not None else 8)
            name = instr.attrs.get("name", "")
            allocate_stack = allocator.allocate_stack
            make_pointer = model.make_pointer
            out = dest if dest is not None else scratch
            model_mkptr = type(model).make_pointer
            if model_mkptr is MemoryModel.make_pointer or model_mkptr is Pdp11Model.make_pointer:
                # Both known make_pointer policies construct the same PtrVal
                # shape, differing only in the ``checked`` flag.
                mk_checked = model_mkptr is MemoryModel.make_pointer

                def handler(frame, slot=slot, size=size, name=name, alignment=alignment,
                            allocate_stack=allocate_stack, mk_checked=mk_checked,
                            out=out, next_pc=next_pc):
                    allocas = frame[_ALLOCAS]
                    pointer = allocas[slot]
                    if pointer is None:
                        obj = allocate_stack(size, name, alignment=alignment)
                        pointer = PtrVal(obj.base, obj.base, obj.size, obj,
                                         PERM_ALL, True, mk_checked)
                        allocas[slot] = pointer
                    frame[out] = pointer
                    return next_pc
            else:
                def handler(frame, slot=slot, size=size, name=name, alignment=alignment,
                            allocate_stack=allocate_stack, make_pointer=make_pointer,
                            out=out, next_pc=next_pc):
                    allocas = frame[_ALLOCAS]
                    pointer = allocas[slot]
                    if pointer is None:
                        pointer = make_pointer(allocate_stack(size, name, alignment=alignment))
                        allocas[slot] = pointer
                    frame[out] = pointer
                    return next_pc
            # Allocas mutate allocator state and the `allocations` golden
            # metric, so they are charge points ("ext"), not deferred pures.
            desc = ("ext", out)
            if index in safe_alloca_pcs:
                # Probe the fresh allocation's 8-aligned shadow slots once
                # per activation; only aligned entries matter because data
                # stores clear exactly those.  The first (lowest-pc) safe
                # alloca assigns the activation flag, later ones AND into it
                # — execution order equals pc order in the entry prefix.
                inner = handler
                assign = index == first_safe_pc

                def handler(frame, inner=inner, slot=slot, out=out,
                            assign=assign, shadow_flag=shadow_flag,
                            shadow_entries=shadow_entries):
                    fresh = frame[_ALLOCAS][slot] is None
                    pc = inner(frame)
                    if fresh:
                        obj = frame[out].obj
                        if obj is None:
                            clean = 0
                        else:
                            clean = 1
                            if shadow_entries:
                                base = obj.base
                                for key in range(base, base + obj.size, 8):
                                    if key in shadow_entries:
                                        clean = 0
                                        break
                        if assign:
                            frame[shadow_flag] = clean
                        else:
                            frame[shadow_flag] = clean & frame[shadow_flag]
                    return pc

        elif op is Opcode.LOAD:
            handler, desc = gen_load(instr, instr.args[0], _NO_DELTA, False, next_pc,
                                     dest if dest is not None else scratch)

        elif op is Opcode.STORE:
            if index in skip_shadow_stores:
                handler = gen_flagged_store(instr, instr.args[0], _NO_DELTA,
                                            False, next_pc)
                desc = ("ext", None)
            else:
                handler, desc = gen_store(instr, instr.args[0], _NO_DELTA, False, next_pc)

        elif op is Opcode.GEP or op is Opcode.PTRADD:
            element_size = instr.attrs["element_size"] if op is Opcode.GEP else 1
            out = dest if dest is not None else scratch
            pslot, pcoerce = ptr_parts(instr.args[0])
            raw = raw_operand(instr.args[1])
            if inline_moves and raw is not None:
                dkind, d1, d2, dlabel = ((1, raw[1] * element_size, 0, None)
                                         if raw[0] == "const"
                                         else (2, raw[1], element_size, raw[3]))
                desc = (("ptrmove", pslot, pcoerce, dkind, d1, d2, dlabel, out)
                        if pslot is not None else ("opaque", out))

                def handler(frame, pslot=pslot, pcoerce=pcoerce, dkind=dkind, d1=d1,
                            d2=d2, dlabel=dlabel, out=out, next_pc=next_pc):
                    if pslot is None:
                        pointer = pcoerce(frame)
                    else:
                        pointer = frame[pslot]
                        if type(pointer) is not PtrVal:
                            pointer = pcoerce(pointer)
                    if dkind == 1:
                        address = (pointer.address + d1) & M64
                    else:
                        idx = frame[d1]
                        if type(idx) is not int:
                            raise InterpreterError(f"use of undefined temporary {dlabel}")
                        address = (pointer.address + idx * d2) & M64
                    frame[out] = PtrVal(address, pointer.base, pointer.length,
                                        pointer.obj, pointer.perms, pointer.tag,
                                        pointer.checked)
                    return next_pc
            else:
                read_ptr = _ptr_reader(machine, instr.args[0], slot_types)
                read_idx = reader(instr.args[1])
                if inline_moves:
                    def handler(frame, read_ptr=read_ptr, read_idx=read_idx,
                                element_size=element_size, out=out, next_pc=next_pc):
                        pointer = read_ptr(frame)
                        idx = read_idx(frame)
                        delta = (idx.value if type(idx) is IntVal else idx.address) * element_size
                        frame[out] = PtrVal((pointer.address + delta) & M64,
                                            pointer.base, pointer.length, pointer.obj,
                                            pointer.perms, pointer.tag, pointer.checked)
                        return next_pc
                else:
                    def handler(frame, read_ptr=read_ptr, read_idx=read_idx,
                                element_size=element_size, out=out, next_pc=next_pc):
                        pointer = read_ptr(frame)
                        idx = read_idx(frame)
                        delta = (idx.value if type(idx) is IntVal else idx.address) * element_size
                        frame[out] = ptr_offset(pointer, delta)
                        return next_pc
            # No model's ptr_offset/int_to_ptr raises, so pointer moves are
            # pure non-trapping work: callable mid-block without dispatch
            # (the inline variant above is emitted as block source instead).
            if desc is None:
                desc = ("opaque", out)

        elif op is Opcode.FIELD:
            field_type = instr.ctype.pointee if isinstance(instr.ctype, PointerType) else None
            field_size = field_type.size(ctx) if field_type is not None else 1
            offset = instr.attrs["offset"]
            field_address = model.field_address
            out = dest if dest is not None else scratch
            if inline_field:
                pslot, pcoerce = ptr_parts(instr.args[0])
                desc = (("ptrmove", pslot, pcoerce, 1, offset, 0, None, out)
                        if pslot is not None else ("opaque", out))

                def handler(frame, pslot=pslot, pcoerce=pcoerce, offset=offset,
                            out=out, next_pc=next_pc):
                    if pslot is None:
                        pointer = pcoerce(frame)
                    else:
                        pointer = frame[pslot]
                        if type(pointer) is not PtrVal:
                            pointer = pcoerce(pointer)
                    frame[out] = PtrVal((pointer.address + offset) & M64,
                                        pointer.base, pointer.length, pointer.obj,
                                        pointer.perms, pointer.tag, pointer.checked)
                    return next_pc
            else:
                read_ptr = _ptr_reader(machine, instr.args[0], slot_types)

                def handler(frame, read_ptr=read_ptr, offset=offset, field_size=field_size,
                            field_address=field_address, out=out, next_pc=next_pc):
                    frame[out] = field_address(read_ptr(frame), offset, field_size)
                    return next_pc
            if desc is None:
                desc = ("opaque", out)

        elif op is Opcode.PTRDIFF:
            read_a = _ptr_reader(machine, instr.args[0], slot_types)
            read_b = _ptr_reader(machine, instr.args[1], slot_types)
            element_size = instr.attrs.get("element_size", 1)
            ptr_diff = model.ptr_diff
            out = dest if dest is not None else scratch
            desc = ("ext", out)  # ptr_diff traps under CHERIv2: charge point
            if dest_type is not None:
                def handler(frame, read_a=read_a, read_b=read_b, element_size=element_size,
                            ptr_diff=ptr_diff, out=out, next_pc=next_pc):
                    raw = ptr_diff(read_a(frame), read_b(frame), element_size) & M64
                    frame[out] = raw - 0x1_0000_0000_0000_0000 if raw >= 0x8000_0000_0000_0000 else raw
                    return next_pc
            else:
                def handler(frame, read_a=read_a, read_b=read_b, element_size=element_size,
                            ptr_diff=ptr_diff, out=out, next_pc=next_pc):
                    frame[out] = IntVal(ptr_diff(read_a(frame), read_b(frame), element_size),
                                        bytes=8, signed=True)
                    return next_pc

        elif op is Opcode.PTRTOINT:
            read_ptr = _ptr_reader(machine, instr.args[0], slot_types)
            target = instr.ctype
            width = min(target.size(ctx), 8)
            signed = getattr(target, "signed", True)
            pointer_sized = _is_pointer_sized_int(target)
            out = dest if dest is not None else scratch

            def handler(frame, read_ptr=read_ptr, width=width, signed=signed,
                        pointer_sized=pointer_sized, out=out, next_pc=next_pc):
                frame[out] = ptr_to_int(read_ptr(frame), bytes=width, signed=signed,
                                        pointer_sized=pointer_sized)
                return next_pc
            desc = ("opaque", out)

        elif op is Opcode.INTTOPTR:
            read_value = reader(instr.args[0])
            appliers = (_qualifier_appliers(machine, instr.ctype)
                        if isinstance(instr.ctype, PointerType) else ())
            out = dest if dest is not None else scratch

            def handler(frame, read_value=read_value, appliers=appliers, out=out, next_pc=next_pc):
                value = read_value(frame)
                pointer = value if type(value) is PtrVal else int_to_ptr(value, allocator)
                for apply in appliers:
                    pointer = apply(pointer)
                frame[out] = pointer
                return next_pc
            desc = ("opaque", out)

        elif op is Opcode.BITCAST:
            deconst = model.deconst if instr.attrs.get("deconst") else None
            appliers = (_qualifier_appliers(machine, instr.ctype)
                        if isinstance(instr.ctype, PointerType) else ())
            out = dest if dest is not None else scratch
            raw = raw_operand(instr.args[0])
            if raw is not None and raw[0] == "slot" and dest_type is not None:
                # Raw pass-through: the analysis gave the destination the
                # source's exact type, so the register value is unchanged.
                _, slot, _, label = raw
                desc = ("copy_raw", slot, label, out)

                def handler(frame, slot=slot, label=label, out=out, next_pc=next_pc):
                    value = frame[slot]
                    if type(value) is not int:
                        raise InterpreterError(f"use of undefined temporary {label}")
                    frame[out] = value
                    return next_pc
            elif raw is not None and dest_type is not None:
                # Constant source with an unboxed destination: the raw
                # register value is the constant itself, known at compile time.
                const_raw = raw[1]
                desc = ("const_raw", const_raw, out)

                def handler(frame, const_raw=const_raw, out=out, next_pc=next_pc):
                    frame[out] = const_raw
                    return next_pc
            else:
                read_value = reader(instr.args[0])
                desc = ("opaque", out)

                def handler(frame, read_value=read_value, deconst=deconst, appliers=appliers,
                            out=out, next_pc=next_pc):
                    value = read_value(frame)
                    if type(value) is PtrVal:
                        if deconst is not None:
                            value = deconst(value)
                        for apply in appliers:
                            value = apply(value)
                    frame[out] = value
                    return next_pc

        elif op is Opcode.INTCAST:
            target = instr.ctype
            width = min(target.size(ctx), 8)
            signed = getattr(target, "signed", True)
            pointer_sized = _is_pointer_sized_int(target)
            out = dest if dest is not None else scratch
            raw = raw_operand(instr.args[0])
            if raw is not None and raw[0] == "slot" and dest_type is not None:
                # Raw-to-raw conversion: inline table-driven masking, no box.
                _, slot, (swidth, ssigned), label = raw
                mask = MASKS[width]
                sign_min = SIGN_MIN[width] if signed else None
                modulus = MODULI[width]
                identity = (swidth, ssigned) == (width, signed)
                desc = (("copy_raw", slot, label, out) if identity
                        else ("intcast_raw", slot, label, width, signed, out))

                def handler(frame, slot=slot, label=label, identity=identity, mask=mask,
                            sign_min=sign_min, modulus=modulus, out=out, next_pc=next_pc):
                    value = frame[slot]
                    if type(value) is not int:
                        raise InterpreterError(f"use of undefined temporary {label}")
                    if not identity:
                        value &= mask
                        if sign_min is not None and value >= sign_min:
                            value -= modulus
                    frame[out] = value
                    return next_pc
            elif raw is not None and dest_type is not None:
                # Constant source with an unboxed destination: fold the
                # conversion at compile time.
                const_raw = IntVal(raw[1], width, signed).value
                desc = ("const_raw", const_raw, out)

                def handler(frame, const_raw=const_raw, out=out, next_pc=next_pc):
                    frame[out] = const_raw
                    return next_pc
            else:
                read_value = reader(instr.args[0])
                desc = ("opaque", out)

                def handler(frame, read_value=read_value, width=width, signed=signed,
                            pointer_sized=pointer_sized, out=out, next_pc=next_pc):
                    value = read_value(frame)
                    if type(value) is PtrVal:
                        frame[out] = ptr_to_int(value, bytes=width, signed=signed,
                                                pointer_sized=pointer_sized)
                    elif (value.bytes == width and value.signed == signed
                          and value.pointer_sized == pointer_sized):
                        frame[out] = value  # no-op conversion: IntVal is immutable
                    else:
                        frame[out] = value.converted(bytes=width, signed=signed,
                                                     pointer_sized=pointer_sized)
                    return next_pc

        elif op is Opcode.BINOP:
            handler, desc = _make_binop(machine, instr, dest if dest is not None else scratch,
                                        dest_type, slot_types, next_pc, propagate_provenance,
                                        ptr_to_int, arg_raw_lists[index])

        elif op is Opcode.UNOP:
            negate = instr.attrs["operator"] == "neg"
            out = dest if dest is not None else scratch
            raw = raw_operand(instr.args[0])
            if raw is not None and raw[0] == "slot" and dest_type is not None:
                _, slot, (swidth, ssigned), label = raw
                mask = MASKS[swidth]
                sign_min = SIGN_MIN[swidth] if ssigned else None
                modulus = MODULI[swidth]
                desc = ("unop_raw", slot, label, negate, swidth, ssigned, out)

                def handler(frame, slot=slot, label=label, negate=negate, mask=mask,
                            sign_min=sign_min, modulus=modulus, out=out, next_pc=next_pc):
                    value = frame[slot]
                    if type(value) is not int:
                        raise InterpreterError(f"use of undefined temporary {label}")
                    value = (-value if negate else ~value) & mask
                    if sign_min is not None and value >= sign_min:
                        value -= modulus
                    frame[out] = value
                    return next_pc
            elif raw is not None and dest_type is not None:
                # Constant operand with an unboxed destination: fold at
                # compile time (same wrapping as IntVal.with_value).
                _, const_value, (swidth, ssigned), _label = raw
                const_raw = IntVal(-const_value if negate else ~const_value,
                                   swidth, ssigned).value
                desc = ("const_raw", const_raw, out)

                def handler(frame, const_raw=const_raw, out=out, next_pc=next_pc):
                    frame[out] = const_raw
                    return next_pc
            else:
                read_value = reader(instr.args[0])
                desc = ("ext", out)  # may trap on a pointer operand: charge point

                def handler(frame, read_value=read_value, negate=negate, out=out, next_pc=next_pc):
                    value = read_value(frame)
                    if type(value) is not IntVal:
                        raise InterpreterError("unary arithmetic on a pointer value")
                    frame[out] = value.with_value(-value.value if negate else ~value.value,
                                                  provenance=None)
                    return next_pc

        elif op is Opcode.CMP:
            handler, desc = _make_cmp(machine, instr, dest if dest is not None else scratch,
                                      dest_type, slot_types, next_pc, inline_ptrcmp,
                                      arg_raw_lists[index])

        elif op is Opcode.CALL:
            cost = call_cost
            handler = _make_call(machine, instr, dest, slot_types, next_pc)
            desc = ("ext", dest)  # callee observes counters: charge point

        else:
            def handler(frame, op=op):
                raise InterpreterError(f"unsupported IR opcode {op}")

        return handler, cost, desc

    def cost_of(index: int) -> int:
        """Dispatch cost of pc ``index`` without building its handler.

        Mirrors ``build``'s cost assignments branch for branch (the same
        rules ``artifact._generic_descs_and_costs`` mirrors); the lazy path
        fills ``paired`` with these up front so budget/cycle accounting
        never waits for a handler to materialize.
        """
        fusion = fused.get(index)
        if fusion is not None:
            return base_cost + (base_cost if fusion[0] == "mem" else branch_cost)
        op = instrs[index].op
        if op is Opcode.LABEL or op is Opcode.NOP:
            return 0
        if op is Opcode.JUMP or op is Opcode.CJUMP:
            return branch_cost
        if op is Opcode.CALL:
            return call_cost
        return base_cost

    nallocas = len(alloca_slots)
    lazy = machine.lazy_binding and shared_blocks
    if lazy:
        # Lazy per-pc binding: every pc starts as a cheap dispatch thunk and
        # builds its real closure only on first execution
        # (CompiledFunction.materialize), so binding cost is proportional to
        # the pcs a run actually reaches — a lane that traps early, or a
        # branch path never taken, never pays for the rest of the function.
        # The lockstep sweep path turns this on; its saving is what makes
        # N-lane batching beat N serial runs (docs/pipeline.md).
        costs = [cost_of(i) for i in range(stop)]
        code = CompiledFunction(function, [None] * stop, costs, nregs, nallocas)
        code.builder = build
        code.built = {}
        paired = code.paired
        for i in range(stop):
            paired[i] = (partial(_lazy_step, code, i), costs[i])
        descs = None
    else:
        handlers: list = []
        costs = []
        descs = []
        for i in range(stop):
            handler, cost, desc = build(i)
            handlers.append(handler)
            costs.append(cost)
            descs.append(desc)
        code = CompiledFunction(function, handlers, costs, nregs, nallocas)
    if SUPERINSTRUCTIONS and stop > 1:
        if shared_blocks:
            # Tiered binding: a sweep-style machine executes most functions
            # once or twice, where block binding never amortizes.  The
            # dispatch loop installs the artifact's cached plans when the
            # function proves hot (see AbstractMachine._execute).  Lazy
            # machines hand the installer a materializing accessor so a
            # block's interior ``h<k>`` bindings are built exactly when the
            # block is.
            get_handler = code.materialize if lazy else handlers.__getitem__

            def install(machine=machine, function=function, code=code,
                        get_handler=get_handler, costs=costs, artifact=artifact,
                        timing=(base_cost, branch_cost, call_cost),
                        fast_noprov=fast_noprov, inline_moves=inline_moves,
                        inline_field=inline_field):
                _install_shared_blocks(machine, function, code, get_handler,
                                       costs, artifact, timing, fast_noprov,
                                       inline_moves, inline_field)

            code.pending_blocks = install
        else:
            _install_superinstructions(machine, function, code, handlers, costs,
                                       descs, fused, labels)
    return code


def _make_fallthrough(next_pc: int):
    return lambda frame: next_pc


# ---------------------------------------------------------------------------
# Basic-block superinstructions
# ---------------------------------------------------------------------------


def _budget_replay(machine, cost_seq: tuple, fname: str):
    """Replay deferred per-entry charges when a batch would overrun the budget.

    Called by a generated block handler *instead of* applying a charge batch
    whose instruction count would exceed ``max_instructions``.  Charging the
    entries one at a time — count, budget check, cycle cost, exactly like the
    dispatch loop — reproduces the precise counter values and trap point of
    single-step execution.  The caller only invokes this when the batch
    overruns, so the loop below always raises.
    """
    for cost in cost_seq:
        machine.instructions = count = machine.instructions + 1
        if count > machine.max_instructions:
            raise InterpreterError(
                f"instruction budget of {machine.max_instructions} "
                f"exhausted in {fname}")
        machine.cycles += cost
    raise InterpreterError(  # pragma: no cover - caller guarantees overrun
        f"instruction budget of {machine.max_instructions} exhausted in {fname}")


def _install_shared_blocks(machine, function: Function, code: CompiledFunction,
                           get_handler, costs: list, artifact,
                           timing: tuple[int, int, int], fast_noprov: bool,
                           inline_moves: bool, inline_field: bool) -> None:
    """Instantiate the artifact's shared superinstruction plans for one machine.

    The plans (segmentation, generated source, compiled code objects) are
    model-independent and cached on the artifact; this binding step only
    builds the per-machine namespace — the ``h<k>`` handler closures, the
    machine itself, the budget-replay helper and (when enabled) the profile
    counter — and ``exec``-utes the cached code object.  No source is
    generated and nothing is ``compile()``-d per machine.
    """
    profiled = machine.block_profile is not None
    for plan in artifact.block_plans(timing, fast_noprov, profiled,
                                     inline_moves, inline_field):
        b = dict(plan.consts)
        b["machine"] = machine
        b["fname"] = function.name
        b["budget_replay"] = _budget_replay
        for k in plan.handler_indices:
            b[f"h{k}"] = get_handler(k)
        if profiled:
            counter = [0]
            machine.block_profile[(function.name, plan.start)] = {
                "count": counter, "entries": plan.entries, "ir": plan.n_ir}
            b["BC"] = counter
        handler = bind_block(plan.code, b)
        code.block_fallbacks[plan.start] = code.paired[plan.start]
        code.paired[plan.start] = (handler, costs[plan.start])
        code.blocks.append((plan.start, plan.entries, plan.n_ir))


def _install_superinstructions(machine, function: Function, code: CompiledFunction,
                               handlers: list, costs: list, descs: list,
                               fused: dict, labels: dict) -> None:
    """Segment the handler list into basic blocks and fuse straight-line runs.

    A block leader is pc 0, any label pc (the only possible branch targets),
    or the entry after a block.  From each leader, consecutive straight-line
    entries are gathered: inline-able raw ops and pure "opaque" handlers join
    freely, trap-capable fixed-successor handlers ("ext": loads, stores,
    calls, divisions, allocas, ``ptrdiff``) join as charge points, and the
    first control transfer (branch, return, fused compare-and-branch) ends
    the block.  Runs of two or more entries become one generated handler
    installed at the leader pc; every non-leader pc keeps its per-instruction
    handler, so branching into the middle of a block works unchanged.
    """
    n = len(handlers)
    label_pcs = set(labels.values())
    pc = 0
    while pc < n:
        members: list[int] = []
        terminal = None
        k = pc
        while k < n:
            d = descs[k]
            if d is None or d[0] in ("goto", "cjump_raw"):
                terminal = k
                break
            members.append(k)
            step = 2 if k in fused else 1  # skip a fused pair's consumer slot
            if len(members) >= _BLOCK_LIMIT or k + step >= n or (k + step) in label_pcs:
                break
            k += step
        if terminal is not None:
            span = members + [terminal]
            next_pc = terminal + (2 if terminal in fused else 1)
        else:
            span = members
            next_pc = (members[-1] + (2 if members[-1] in fused else 1)) if members else pc + 1
        if len(span) >= 2:
            handler, n_ir = _emit_block(machine, function, handlers, costs,
                                        descs, fused, members, terminal, next_pc)
            code.block_fallbacks[span[0]] = code.paired[span[0]]
            code.paired[span[0]] = (handler, costs[span[0]])
            code.blocks.append((span[0], len(span), n_ir))
        pc = next_pc


def _emit_block(machine, function: Function, handlers: list, costs: list,
                descs: list, fused: dict, members: list, terminal: int | None,
                fall_to: int):
    """Generate the source for one superinstruction and compile it.

    Counter exactness is preserved by *charge groups*: pure entries (which
    cannot trap and touch nothing but the frame) run immediately but defer
    their instruction/cost charges; every trap-capable entry flushes the
    deferred charges plus its own — with one batched add and budget check —
    **before** it executes.  At any point a trap can surface, the counters
    therefore equal exactly what single-step dispatch would have charged.
    When a batch would overrun the instruction budget, :func:`_budget_replay`
    charges the group entry-by-entry and raises at the precise single-step
    trap point.  (The leader's count/cost is charged by the dispatch loop
    before the block handler runs, like any other handler's.)
    """
    span = members + [terminal] if terminal is not None else members
    start = span[0]
    n_ir = sum(2 if k in fused else 1 for k in span)

    bindings = {"machine": machine, "InterpreterError": InterpreterError,
                "budget_replay": _budget_replay, "fname": function.name}
    lines: list[str] = []
    emit = lines.append

    profile = machine.block_profile
    if profile is not None:
        counter = [0]
        profile[(function.name, start)] = {
            "count": counter, "entries": len(span), "ir": n_ir}
        bindings["BC"] = counter
        emit("        BC[0] += 1")

    #: slot index -> local variable (or parenthesised literal) holding the
    #: slot's current raw value; threads values through the block's locals.
    local_of: dict[int, str] = {}
    #: slot index -> local variable known to hold that slot's PtrVal (after a
    #: coerced read or an inline pointer move); lets consecutive pointer ops
    #: on one register skip the frame read and type check.
    ptr_local_of: dict[int, str] = {}
    serial = [0]

    def invalidate(slot) -> None:
        if slot is not None:
            local_of.pop(slot, None)
            ptr_local_of.pop(slot, None)

    def set_raw(out: int, var: str) -> None:
        emit(f"        frame[{out}] = {var}")
        local_of[out] = var
        ptr_local_of.pop(out, None)
    #: entries executed (pure) or pending (the next ext/terminal) whose
    #: count/cost charges have not reached the machine counters yet.
    pending: list[int] = []

    def flush_charges(including: int | None) -> None:
        entries = pending + ([including] if including is not None else [])
        if not entries:
            return
        pending.clear()
        group_cost = sum(costs[e] for e in entries)
        serial[0] += 1
        seq_name = f"cs{serial[0]}"
        bindings[seq_name] = tuple(costs[e] for e in entries)
        emit(f"        icount = machine.instructions + {len(entries)}")
        emit("        if icount > machine.max_instructions:")
        emit(f"            budget_replay(machine, {seq_name}, fname)")
        emit("        machine.instructions = icount")
        if group_cost:
            emit(f"        machine.cycles += {group_cost}")

    def fresh() -> str:
        serial[0] += 1
        return f"v{serial[0]}"

    def read_raw(slot: int, label: str | None, message: str | None = None) -> str:
        var = local_of.get(slot)
        if var is not None:
            return var
        var = fresh()
        if message is None:
            message = f"use of undefined temporary {label}"
        emit(f"        {var} = frame[{slot}]")
        emit(f"        if type({var}) is not int:")
        emit(f"            raise InterpreterError({message!r})")
        local_of[slot] = var
        return var

    def read_ptr(pslot: int, pcoerce, k: int) -> str:
        """Read a pointer register into a local (threaded across the block)."""
        var = ptr_local_of.get(pslot)
        if var is not None:
            return var
        var = fresh()
        coerce_name = f"pco{k}"
        bindings[coerce_name] = pcoerce
        bindings["PtrVal"] = PtrVal
        emit(f"        {var} = frame[{pslot}]")
        emit(f"        if type({var}) is not PtrVal:")
        emit(f"            {var} = {coerce_name}({var})")
        ptr_local_of[pslot] = var
        return var

    def emit_scalar_mem(k: int, d: tuple) -> bool:
        """Inline a scalar load/store body; False when the shape is not
        eligible (pointer-typed accesses, overridden check policies, timing
        disabled, ...) and the entry must stay a closure call.

        The emitted operations mirror ``hotgen.load_body``/``store_body`` for
        the same shape exactly — same checks, same counters, same fall-backs
        — with the pointer register threaded through the block's locals.
        """
        _, out, op, shape, b = d
        if op == "load":
            (kind, pslot_inline, dkind, extra, check_kind, collect_timing_f,
             inline_cache_f, _uses_shadow, _memo, _rec, _napp, fast_mem) = shape
            if kind not in ("raw", "box"):
                return False
            is_write = False
        else:
            (kind, pslot_inline, dkind, extra, check_kind, collect_timing_f,
             inline_cache_f, clear_shadow_f, _uses_shadow, value_mode,
             coerce_f, _wide, fast_mem) = shape
            if kind != "scalar":
                return False
            is_write = True
        if not (pslot_inline and check_kind in (1, 2) and collect_timing_f
                and inline_cache_f and fast_mem):
            return False

        for name in ("machine", "fname", "check_access", "l1_sets", "l1_stats",
                     "l2_access", "hier", "hierarchy_access", "pages_get",
                     "read_small", "write_small", "mem_pages", "mem_tags",
                     "shadow_entries", "shadow_pages"):
            bindings[name] = b[name]
        size = b["size"]
        pointer = read_ptr(b["pslot"], b["pcoerce"], k)
        address = fresh()
        if dkind == 0:
            emit(f"        {address} = {pointer}.address")
        elif dkind == 1:
            bindings["M64"] = _ADDRESS_MASK
            emit(f"        {address} = ({pointer}.address + ({b['d1']!r})) & M64")
        else:
            bindings["M64"] = _ADDRESS_MASK
            index = read_raw(b["d1"], None, b["dmsg"])
            emit(f"        {address} = ({pointer}.address + {index} * ({b['d2']!r})) & M64")
        if extra:
            # Fused second instruction: count it before any observable effect
            # (its cycle cost is in the pair's costs[] entry, charged with
            # the enclosing charge group).
            counter = fresh()
            emit(f"        machine.instructions = {counter} = machine.instructions + 1")
            emit(f"        if {counter} > machine.max_instructions:")
            emit("            raise InterpreterError(")
            emit("                f'instruction budget of {machine.max_instructions} "
                 "exhausted in {fname}')")

        # Value to store is prepared before the access check, like store_body.
        if is_write:
            if value_mode == 0:
                raw = f"({b['const_raw']!r})"
            elif value_mode == 1:
                value = read_raw(b["vslot"], None, b["vmsg"])
                raw = fresh()
                emit(f"        {raw} = {value} & ({b['comb_mask']!r})")
            else:
                reader_name = f"rv{k}"
                bindings[reader_name] = b["read_value"]
                value = fresh()
                emit(f"        {value} = {reader_name}(frame)")
                if coerce_f:
                    bindings["ptr_to_int"] = b["ptr_to_int"]
                    bindings["PtrVal"] = PtrVal
                    emit(f"        if type({value}) is PtrVal:")
                    emit(f"            {value} = ptr_to_int({value}, bytes={b['coerce_bytes']!r},"
                         f" signed={b['coerce_signed']!r}, pointer_sized=False)")
                bindings["IntVal"] = IntVal
                raw = fresh()
                emit(f"        {raw} = ({value}.unsigned if type({value}) is IntVal"
                     f" else int({value})) & ({b['size_mask']!r})")

        # Dereference check (same two known policies as hotgen._emit_check).
        perm = 2 if is_write else 1
        flag = "True" if is_write else "False"
        if check_kind == 1:
            obj = fresh()
            emit(f"        {obj} = {pointer}.obj")
            emit(f"        if not ({pointer}.tag and {pointer}.checked and {pointer}.perms & {perm}")
            emit(f"                and {pointer}.base <= {address}")
            emit(f"                and {address} + {size} <= {pointer}.base + {pointer}.length")
            emit(f"                and ({obj} is None or not {obj}.freed)")
            emit(f"                and not ({address} == 0 and {obj} is None)):")
        else:
            emit(f"        if {address} < 4096:")
        if dkind:
            emit(f"            {address} = check_access(PtrVal({address}, {pointer}.base,"
                 f" {pointer}.length, {pointer}.obj, {pointer}.perms, {pointer}.tag,"
                 f" {pointer}.checked), {size}, is_write={flag})")
        else:
            emit(f"            {address} = check_access({pointer}, {size}, is_write={flag})")
        emit("        machine.memory_accesses += 1")

        # Inline L1-hit timing (hotgen._emit_timing with literal latencies).
        line = fresh()
        latency = fresh()
        cache_set = fresh()
        tag = fresh()
        counter_attr = "writes" if is_write else "reads"
        emit(f"        {line} = {address} >> ({b['line_shift']!r})")
        emit(f"        if ({address} + ({b['size_m1']!r})) >> ({b['line_shift']!r}) == {line}:")
        emit(f"            {cache_set} = l1_sets[{line} & ({b['nsets_mask']!r})]")
        emit(f"            {tag} = {line} >> ({b['nsets_shift']!r})")
        emit(f"            l1_stats.{counter_attr} += 1")
        emit(f"            if {tag} in {cache_set}:")
        emit(f"                del {cache_set}[{tag}]")
        emit(f"                {cache_set}[{tag}] = 0")
        emit("                l1_stats.hits += 1")
        emit(f"                {latency} = ({b['lat_l1']!r})")
        emit("            else:")
        emit("                l1_stats.misses += 1")
        emit(f"                if len({cache_set}) >= ({b['assoc']!r}):")
        emit(f"                    del {cache_set}[next(iter({cache_set}))]")
        emit(f"                {cache_set}[{tag}] = 0")
        emit(f"                {latency} = ({b['lat_l1'] + b['lat_l2']!r})")
        emit(f"                if not l2_access({line} << ({b['line_shift']!r}), is_write={flag}):")
        emit("                    hier.dram_accesses += 1")
        emit(f"                    {latency} += ({b['lat_dram']!r})")
        emit(f"            hier.stall_cycles += {latency}")
        emit(f"            machine.cycles += {latency}")
        emit("        else:")
        emit(f"            machine.cycles += hierarchy_access({address}, {size}, is_write={flag})")

        offset = fresh()
        page = fresh()
        emit(f"        {offset} = {address} & ({b['page_mask']!r})")
        if is_write:
            if clear_shadow_f:
                key = fresh()
                emit("        if shadow_entries:")
                emit(f"            for {key} in range({address} - {address} % 8, {address} + {size}, 8):")
                emit(f"                if {key} in shadow_entries:")
                emit(f"                    del shadow_entries[{key}]")
                emit(f"                    shadow_pages[{key} >> {PAGE_SHIFT}].discard({key})")
            pack_name = f"pk{k}"
            bindings[pack_name] = b["mem_pack"]
            emit(f"        if not mem_tags and {offset} + {size} <= ({b['page_size']!r})"
                 f" and 0 <= {address} and {address} + {size} <= ({b['mem_size']!r}):")
            emit(f"            {page} = pages_get({address} >> ({b['page_shift']!r}))")
            emit(f"            if {page} is None:")
            emit(f"                {page} = mem_pages[{address} >> ({b['page_shift']!r})]"
                 f" = bytearray({b['page_size']!r})")
            emit(f"            {pack_name}({page}, {offset}, {raw})")
            emit("        else:")
            emit(f"            write_small({address}, {size}, {raw})")
        else:
            unpack_name = f"up{k}"
            bindings[unpack_name] = b["mem_unpack"]
            raw = fresh()
            emit(f"        if {offset} + {size} <= ({b['page_size']!r})"
                 f" and 0 <= {address} and {address} + {size} <= ({b['mem_size']!r}):")
            emit(f"            {page} = pages_get({address} >> ({b['page_shift']!r}))")
            emit(f"            {raw} = 0 if {page} is None else {unpack_name}({page}, {offset})[0]")
            emit("        else:")
            emit(f"            {raw} = read_small({address}, {size}, {b['signed']!r})")
            if kind == "raw":
                set_raw(out, raw)
            else:
                table_name = f"T{k}"
                bindings[table_name] = b["table"]
                bindings["IntVal"] = IntVal
                emit(f"        frame[{out}] = ({table_name}[{raw} - ({INTERN_MIN})]"
                     f" if {INTERN_MIN} <= {raw} <= {INTERN_MAX}"
                     f" else IntVal({raw}, {size}, {b['signed']!r}))")
                invalidate(out)
        return True

    def operand(kind: str, payload, label) -> str:
        if kind == "slot":
            return read_raw(payload, label)
        return f"({payload!r})"

    def wrap(expr: str, width: int, signed: bool) -> str:
        """Emit width wrapping of ``expr`` into a fresh local; return it."""
        var = fresh()
        emit(f"        {var} = {expr} & {MASKS[width]}")
        if signed:
            emit(f"        if {var} >= {SIGN_MIN[width]}:")
            emit(f"            {var} -= {MODULI[width]}")
        return var

    for position, k in enumerate(members):
        d = descs[k]
        kind = d[0]
        if kind == "ext" or kind == "mem":
            # Trap-capable fixed-successor entry: flush deferred charges
            # plus this entry's own before it runs (the leader's charge was
            # already applied by the dispatch loop).  Scalar loads/stores are
            # emitted in line (threading the pointer register through the
            # block's locals); pointer-typed accesses and unusual shapes stay
            # closure calls — their shared code objects are hot and
            # well-specialized, and splicing their large bodies into every
            # block measured slower at workload scale.
            flush_charges(None if position == 0 else k)
            if kind == "mem" and emit_scalar_mem(k, d):
                continue
            name = f"h{k}"
            bindings[name] = handlers[k]
            emit(f"        {name}(frame)")
            invalidate(d[1])
            continue
        if position > 0:
            pending.append(k)
        if kind == "label":
            continue
        if kind == "opaque":
            name = f"h{k}"
            bindings[name] = handlers[k]
            emit(f"        {name}(frame)")
            invalidate(d[1])
        elif kind == "ptrmove":
            _, pslot, pcoerce, dkind, d1, d2, dlabel, out = d
            p = read_ptr(pslot, pcoerce, k)
            if dkind == 1:
                address = f"({p}.address + ({d1!r})) & M64"
            else:
                index = read_raw(d1, dlabel)
                address = f"({p}.address + {index} * ({d2!r})) & M64"
            bindings["PtrVal"] = PtrVal
            bindings["M64"] = _ADDRESS_MASK
            var = fresh()
            emit(f"        {var} = PtrVal({address}, {p}.base, {p}.length,"
                 f" {p}.obj, {p}.perms, {p}.tag, {p}.checked)")
            emit(f"        frame[{out}] = {var}")
            ptr_local_of[out] = var
            local_of.pop(out, None)
        elif kind == "const_raw":
            _, value, out = d
            set_raw(out, f"({value!r})")
        elif kind == "copy_raw":
            _, slot, label, out = d
            set_raw(out, read_raw(slot, label))
        elif kind == "intcast_raw":
            _, slot, label, width, signed, out = d
            set_raw(out, wrap(read_raw(slot, label), width, signed))
        elif kind == "unop_raw":
            _, slot, label, negate, width, signed, out = d
            source = read_raw(slot, label)
            set_raw(out, wrap(f"({'-' if negate else '~'}{source})", width, signed))
        elif kind == "binop_raw":
            (_, lkind, lpayload, llabel, rkind, rpayload, rlabel,
             operator, width, signed, dest_mode, out) = d
            a = operand(lkind, lpayload, llabel)
            b = operand(rkind, rpayload, rlabel)
            var = wrap(_BINOP_EXPR[operator].format(a=a, b=b), width, signed)
            if dest_mode == 0:
                set_raw(out, var)
            elif dest_mode == 1:
                table_name = f"T{k}"
                bindings[table_name] = intern_table(width, signed)
                bindings["IntVal"] = IntVal
                emit(f"        frame[{out}] = ({table_name}[{var} - ({INTERN_MIN})]"
                     f" if {INTERN_MIN} <= {var} <= {INTERN_MAX}"
                     f" else IntVal({var}, {width}, {signed}))")
                invalidate(out)
            else:
                bindings["IntVal"] = IntVal
                emit(f"        frame[{out}] = IntVal({var}, {width}, {signed}, None, True)")
                invalidate(out)
        elif kind == "cmp_raw":
            (_, lkind, lpayload, llabel, rkind, rpayload, rlabel,
             operator, raw_dest, out) = d
            a = operand(lkind, lpayload, llabel)
            b = operand(rkind, rpayload, rlabel)
            condition = f"{a} {operator} {b}"
            if raw_dest:
                var = fresh()
                emit(f"        {var} = 1 if {condition} else 0")
                set_raw(out, var)
            else:
                bindings["TRUE"] = _TRUE
                bindings["FALSE"] = _FALSE
                emit(f"        frame[{out}] = TRUE if {condition} else FALSE")
                invalidate(out)
        else:  # pragma: no cover - descriptor/emitter mismatch is a bug
            raise InterpreterError(f"unknown block descriptor {d!r}")

    if terminal is None:
        flush_charges(None)
        emit(f"        return {fall_to}")
    else:
        d = descs[terminal]
        flush_charges(None if terminal == start else terminal)
        if d is not None and d[0] == "goto":
            emit(f"        return {d[1]}")
        elif d is not None and d[0] == "cjump_raw":
            _, slot, label, then_pc, else_pc = d
            var = read_raw(slot, label)
            emit(f"        return {then_pc} if {var} else {else_pc}")
        else:
            name = f"h{terminal}"
            bindings[name] = handlers[terminal]
            emit(f"        return {name}(frame)")

    handler = compile_block(lines, bindings, f"{function.name}+{start}")
    return handler, n_ir


def _make_binop(machine, instr, out: int, dest_type, slot_types, next_pc: int,
                propagate_provenance, ptr_to_int, arg_raws):
    """Compile a BINOP; returns ``(handler, block_descriptor)``."""
    operator = instr.attrs["operator"]
    target = instr.ctype
    ctx = machine.ctx
    width = min(target.size(ctx), 8) if target is not None else 8
    signed = getattr(target, "signed", True)
    pointer_sized = _is_pointer_sized_int(target)
    is_division = operator in ("/", "%")
    fast_op = _INT_BINOPS.get(operator)
    is_div_op = operator == "/"
    # Skipping the provenance hook for provenance-free operands is only valid
    # for the base implementation (no source -> None); a model that overrides
    # the hook gets called unconditionally.
    fast_noprov = type(machine.model).propagate_provenance is MemoryModel.propagate_provenance

    if fast_op is None and not is_division:
        read_left = _reader(machine, instr.args[0], slot_types)
        read_right = _reader(machine, instr.args[1], slot_types)

        def handler(frame):
            read_left(frame)
            read_right(frame)
            raise InterpreterError(f"unknown binary operator {operator!r}")
        return handler, None

    raw_left, raw_right = arg_raws
    if raw_left is not None and raw_right is not None and fast_noprov:
        # Fully unboxed arithmetic: raw ints in, raw int out (when the
        # destination slot is unboxed too), wrapping inlined from the mask
        # tables.  No IntVal is ever constructed on this path.
        mask = MASKS[width]
        sign_min = SIGN_MIN[width] if signed else None
        modulus = MODULI[width]
        lkind, lpayload, _lt, llabel = raw_left
        rkind, rpayload, _rt, rlabel = raw_right
        table = None if (dest_type is not None or pointer_sized) else intern_table(width, signed)

        def handler(frame, fast_op=fast_op, mask=mask, sign_min=sign_min, modulus=modulus,
                    table=table, out=out, next_pc=next_pc):
            if lkind == "slot":
                a = frame[lpayload]
                if type(a) is not int:
                    raise InterpreterError(f"use of undefined temporary {llabel}")
            else:
                a = lpayload
            if rkind == "slot":
                b = frame[rpayload]
                if type(b) is not int:
                    raise InterpreterError(f"use of undefined temporary {rlabel}")
            else:
                b = rpayload
            if is_division:
                if b == 0:
                    raise UndefinedBehaviorError("integer division by zero")
                quotient = abs(a) // abs(b)
                signed_quotient = quotient if (a >= 0) == (b >= 0) else -quotient
                raw = signed_quotient if is_div_op else a - signed_quotient * b
            else:
                raw = fast_op(a, b)
            wrapped = raw & mask
            if sign_min is not None and wrapped >= sign_min:
                wrapped -= modulus
            if table is None:
                if pointer_sized:
                    frame[out] = IntVal(wrapped, width, signed, None, True)
                else:
                    frame[out] = wrapped
            elif INTERN_MIN <= wrapped <= INTERN_MAX:
                frame[out] = table[wrapped - INTERN_MIN]
            else:
                frame[out] = IntVal(wrapped, width, signed)
            return next_pc

        if is_division:
            # Division by zero is a program-level trap: charge point.
            desc = ("ext", out)
        else:
            dest_mode = 0 if dest_type is not None else 2 if pointer_sized else 1
            desc = ("binop_raw", lkind, lpayload, llabel, rkind, rpayload,
                    rlabel, operator, width, signed, dest_mode, out)
        return handler, desc

    # Generic path: inline boxed Temp reads (the common case — e.g. summing
    # call results) and fall back to reader closures for everything else.
    def binop_operand(operand):
        if type(operand) is Temp and operand.index not in slot_types:
            return 0, operand.index + _FRAME_RESERVED, str(operand)
        hoisted = _const_value(machine, operand) if type(operand) is Const else None
        if hoisted is not None:
            return 1, hoisted, None
        return 2, _reader(machine, operand, slot_types), None

    lmode, lsrc, llabel = binop_operand(instr.args[0])
    rmode, rsrc, rlabel = binop_operand(instr.args[1])
    table = intern_table(width, signed) if (not pointer_sized and fast_noprov) else None

    def handler(frame, lmode=lmode, lsrc=lsrc, llabel=llabel, rmode=rmode,
                rsrc=rsrc, rlabel=rlabel):
        if lmode == 0:
            left = frame[lsrc]
            if left is UNDEF:
                raise InterpreterError(f"use of undefined temporary {llabel}")
        elif lmode == 1:
            left = lsrc
        else:
            left = lsrc(frame)
        if rmode == 0:
            right = frame[rsrc]
            if right is UNDEF:
                raise InterpreterError(f"use of undefined temporary {rlabel}")
        elif rmode == 1:
            right = rsrc
        else:
            right = rsrc(frame)
        if type(left) is not IntVal:
            left = ptr_to_int(left, bytes=8, signed=False, pointer_sized=True)
        if type(right) is not IntVal:
            right = ptr_to_int(right, bytes=8, signed=False, pointer_sized=True)
        a = left.value
        b = right.value
        if is_division:
            if b == 0:
                raise UndefinedBehaviorError("integer division by zero")
            quotient = abs(a) // abs(b)
            signed_quotient = quotient if (a >= 0) == (b >= 0) else -quotient
            raw = signed_quotient if is_div_op else a - signed_quotient * b
        else:
            raw = fast_op(a, b)
        if fast_noprov and left.provenance is None and right.provenance is None:
            if table is not None and INTERN_MIN <= raw <= INTERN_MAX:
                boxed = table[raw - INTERN_MIN]
                frame[out] = boxed.value if dest_type is not None else boxed
                return next_pc
            provenance = None  # matches the base model: no source, no provenance
        else:
            provenance = propagate_provenance(left, right, raw)
        result = IntVal(raw, bytes=width, signed=signed, provenance=provenance,
                        pointer_sized=pointer_sized)
        # An unboxed destination can only have been proven provenance-free;
        # store the raw register representation.
        frame[out] = result.value if dest_type is not None else result
        return next_pc

    # The generic non-division handler touches no hook that can trap when the
    # model keeps the base provenance policy, so its charge can be deferred;
    # division (or an overridden provenance hook) makes it a charge point.
    if fast_noprov and not is_division:
        return handler, ("opaque", out)
    return handler, ("ext", out)


def _make_cmp(machine, instr, out: int, dest_type, slot_types, next_pc: int,
              inline_ptrcmp: bool, arg_raws):
    """Compile a CMP; returns ``(handler, block_descriptor)``."""
    operator = instr.attrs["operator"]
    compare = _CMP_FUNCS.get(operator)
    ptr_compare = machine.model.ptr_compare
    if compare is None:
        read_left = _reader(machine, instr.args[0], slot_types)
        read_right = _reader(machine, instr.args[1], slot_types)

        def handler(frame, read_left=read_left, read_right=read_right, operator=operator):
            read_left(frame)
            read_right(frame)
            raise KeyError(operator)
        return handler, None

    raw_left, raw_right = arg_raws
    raw_dest = dest_type is not None
    if raw_left is not None and raw_right is not None:
        lkind, lpayload, _lt, llabel = raw_left
        rkind, rpayload, _rt, rlabel = raw_right

        def handler(frame, compare=compare, out=out, raw_dest=raw_dest, next_pc=next_pc):
            if lkind == "slot":
                a = frame[lpayload]
                if type(a) is not int:
                    raise InterpreterError(f"use of undefined temporary {llabel}")
            else:
                a = lpayload
            if rkind == "slot":
                b = frame[rpayload]
                if type(b) is not int:
                    raise InterpreterError(f"use of undefined temporary {rlabel}")
            else:
                b = rpayload
            if raw_dest:
                frame[out] = 1 if compare(a, b) else 0
            else:
                frame[out] = _TRUE if compare(a, b) else _FALSE
            return next_pc

        return handler, ("cmp_raw", lkind, lpayload, llabel, rkind, rpayload,
                         rlabel, operator, raw_dest, out)

    read_left = _reader(machine, instr.args[0], slot_types)
    read_right = _reader(machine, instr.args[1], slot_types)

    def handler(frame, read_left=read_left, read_right=read_right, compare=compare,
                ptr_compare=ptr_compare, out=out, raw_dest=raw_dest, next_pc=next_pc):
        left = read_left(frame)
        right = read_right(frame)
        left_is_ptr = type(left) is PtrVal
        if left_is_ptr and type(right) is PtrVal and not inline_ptrcmp:
            result = ptr_compare(left, right, operator)
        else:
            result = compare(left.address if left_is_ptr else left.value,
                             right.address if type(right) is PtrVal else right.value)
        if raw_dest:
            frame[out] = 1 if result else 0
        else:
            frame[out] = _TRUE if result else _FALSE
        return next_pc

    # ptr_compare is only a dict lookup in the base model; a model that
    # overrides it could trap, making the comparison a charge point.
    return handler, (("opaque", out) if inline_ptrcmp else ("ext", out))


def _make_call(machine, instr, dest: int | None, slot_types, next_pc: int):
    callee = instr.attrs["callee"]
    # Call arguments cross an ABI boundary: raw registers are boxed by their
    # compiled readers (through the intern pool), so callees, intrinsics and
    # model hooks only ever see IntVal/PtrVal.
    arg_readers = tuple(_reader(machine, arg, slot_types) for arg in instr.args)
    # A raw destination slot only exists when the static checker proved the
    # callee returns a provenance-free IntVal of exactly the slot's shape
    # (repro.staticcheck.facts), so storing the bare value is an identity
    # with the reader-side re-boxing.
    unwrap = dest is not None and instr.dest.index in slot_types
    function = machine.module.functions.get(callee)
    result_type = instr.ctype

    if function is not None and function.instrs:
        int_to_ptr = machine.model.int_to_ptr
        allocator = machine.allocator
        params = function.params

        def make_coercer(param_type):
            if not isinstance(param_type, PointerType):
                return None
            appliers = _qualifier_appliers(machine, param_type)

            def coerce(value):
                if type(value) is PtrVal:
                    for apply in appliers:
                        value = apply(value)
                    return value
                if type(value) is IntVal:
                    return int_to_ptr(value, allocator)
                return value

            return coerce

        def compose(index, reader):
            param_type = params[index][1] if index < len(params) else None
            if not isinstance(param_type, PointerType):
                return reader
            appliers = _qualifier_appliers(machine, param_type)
            operand = instr.args[index]
            if not appliers and type(operand) is Temp and operand.index not in slot_types:
                # The dominant case — a boxed register passed to an
                # unqualified pointer parameter — reads and coerces in one
                # closure (same outcomes as reader + coercer separately).
                slot = operand.index + _FRAME_RESERVED
                label = str(operand)

                def read_ptr_arg(frame, slot=slot, label=label):
                    value = frame[slot]
                    if type(value) is PtrVal:
                        return value
                    if type(value) is IntVal:
                        return int_to_ptr(value, allocator)
                    if value is UNDEF:
                        raise InterpreterError(f"use of undefined temporary {label}")
                    return value

                return read_ptr_arg
            coerce = make_coercer(param_type)
            return lambda frame, reader=reader, coerce=coerce: coerce(reader(frame))

        readers = tuple(compose(i, reader) for i, reader in enumerate(arg_readers))
        machine_call = machine._call
        arity = len(readers)
        # The callee's compiled form is resolved lazily on first call (eager
        # compilation could recurse through the call graph) and then pinned
        # in this cell, skipping the per-call code-cache lookup.
        code_cell: list = []
        code_append = code_cell.append
        code_for = machine._code_for

        if arity == 0:
            def handler(frame):
                if not code_cell:
                    code_append(code_for(function))
                result = machine_call(function, [], code_cell[0])
                if unwrap:
                    frame[dest] = result.value
                elif dest is not None:
                    frame[dest] = result
                return next_pc
        elif arity == 1:
            read0, = readers

            def handler(frame):
                if not code_cell:
                    code_append(code_for(function))
                result = machine_call(function, [read0(frame)], code_cell[0])
                if unwrap:
                    frame[dest] = result.value
                elif dest is not None:
                    frame[dest] = result
                return next_pc
        elif arity == 2:
            read0, read1 = readers

            def handler(frame):
                if not code_cell:
                    code_append(code_for(function))
                result = machine_call(function, [read0(frame), read1(frame)], code_cell[0])
                if unwrap:
                    frame[dest] = result.value
                elif dest is not None:
                    frame[dest] = result
                return next_pc
        elif arity == 3:
            read0, read1, read2 = readers

            def handler(frame):
                if not code_cell:
                    code_append(code_for(function))
                result = machine_call(function, [read0(frame), read1(frame), read2(frame)],
                                      code_cell[0])
                if unwrap:
                    frame[dest] = result.value
                elif dest is not None:
                    frame[dest] = result
                return next_pc
        else:
            def handler(frame):
                if not code_cell:
                    code_append(code_for(function))
                result = machine_call(function, [read(frame) for read in readers],
                                      code_cell[0])
                if unwrap:
                    frame[dest] = result.value
                elif dest is not None:
                    frame[dest] = result
                return next_pc

        return handler

    intrinsic = INTRINSICS.get(callee)
    if intrinsic is None:
        def handler(frame):
            raise InterpreterError(f"call to unknown function {callee!r}")
        return handler

    def handler(frame):
        arguments = [reader(frame) for reader in arg_readers]
        result = intrinsic(machine, arguments, result_type)
        if unwrap:
            frame[dest] = result.value
        elif dest is not None:
            frame[dest] = result
        return next_pc

    return handler

"""Predecoded threaded-dispatch engine for the abstract machine.

The original interpreter walked every :class:`~repro.minic.ir.Instr` through a
chain of ``if op is Opcode.X`` tests, re-resolving ``attrs`` dict entries,
label maps and operand kinds on every execution.  This module compiles each IR
function **once per machine** into a flat list of per-instruction closures
("handlers"):

* label targets are resolved to instruction indices at compile time, so a
  branch is just ``return target_index``;
* ``attrs`` lookups (operators, offsets, element sizes, callees) are hoisted
  into closure variables;
* operands are pre-classified — a :class:`Temp` becomes a register-slot read,
  an integer :class:`Const` becomes a hoisted immutable :class:`IntVal`, a
  :class:`GlobalRef` becomes a name lookup (kept at run time because the GC
  may rewrite globals between runs);
* per-instruction cycle costs are precomputed into a parallel ``costs`` list;
* temporaries live in a flat preallocated register list instead of a dict.

The engine is **observationally identical** to the old dispatch chain: the
same instruction/cycle/memory-access counts, the same outputs and the same
traps for every memory model (``tests/test_metrics_golden.py`` pins this).

Frame layout: handlers receive one ``frame`` list shaped as
``[args, alloca_slots, return_value, reg0, reg1, ..., scratch]``.
"""

from __future__ import annotations

from repro.common.errors import InterpreterError, UndefinedBehaviorError
from repro.interp.intrinsics import INTRINSICS
from repro.interp.models.base import MemoryModel
from repro.interp.models.pdp11 import Pdp11Model
from repro.interp.values import IntVal, Provenance, PtrVal
from repro.minic.ir import Const, Function, GlobalRef, Opcode, Temp
from repro.minic.typesys import IntType, PointerType, Qualifiers

#: sentinel stored in unwritten register slots (None is a legitimate value).
UNDEF = object()

#: indices of the bookkeeping slots at the head of every frame.
_ARGS, _ALLOCAS, _RET = 0, 1, 2
#: register slot of temp ``%i`` is ``i + _FRAME_RESERVED``.
_FRAME_RESERVED = 3

_ADDRESS_MASK = (1 << 64) - 1

#: interned comparison results (IntVal is frozen, so sharing is safe).
_TRUE = IntVal(1, bytes=4)
_FALSE = IntVal(0, bytes=4)

#: interned small integers per (width, signed); loads and integer arithmetic
#: produce values in [0, 256] constantly (loop counters, characters, flags).
_SMALL_MAX = 256
_small_tables: dict[tuple[int, bool], tuple] = {}


def _small_ints(width: int, signed: bool):
    """Shared IntVal instances for 0..256, or None when the width can't hold them."""
    if width < 2:
        return None
    key = (width, signed)
    table = _small_tables.get(key)
    if table is None:
        table = tuple(IntVal(v, bytes=width, signed=signed) for v in range(_SMALL_MAX + 1))
        _small_tables[key] = table
    return table

_INT_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
}

_CMP_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class CompiledFunction:
    """The predecoded form of one IR function, bound to one machine."""

    __slots__ = ("function", "handlers", "costs", "size", "nregs", "nallocas",
                 "frame_proto")

    def __init__(self, function: Function, handlers: list, costs: list,
                 nregs: int, nallocas: int) -> None:
        self.function = function
        self.handlers = handlers
        self.costs = costs
        self.size = len(handlers)
        self.nregs = nregs
        self.nallocas = nallocas
        #: template frame: bookkeeping slots + registers, copied per call.
        self.frame_proto = [None, None, None] + [UNDEF] * nregs


# ---------------------------------------------------------------------------
# Operand predecoding
# ---------------------------------------------------------------------------


def _const_value(machine, operand: Const):
    """Hoisted runtime value of a constant, or None when it needs run-time state."""
    ctype = operand.ctype
    if isinstance(ctype, PointerType):
        if operand.value == 0:
            return machine.model.null_pointer()
        return None  # non-null pointer constant: conversion consults the allocator
    size = ctype.size(machine.ctx) if isinstance(ctype, IntType) else 8
    signed = getattr(ctype, "signed", True)
    pointer_sized = isinstance(ctype, IntType) and ctype.is_pointer_sized
    return IntVal(operand.value, bytes=min(size, 8), signed=signed, pointer_sized=pointer_sized)


def _reader(machine, operand):
    """Compile an operand into a ``frame -> value`` accessor."""
    kind = type(operand)
    if kind is Temp:
        slot = operand.index + _FRAME_RESERVED
        label = str(operand)

        def read_temp(frame):
            value = frame[slot]
            if value is UNDEF:
                raise InterpreterError(f"use of undefined temporary {label}")
            return value

        return read_temp
    if kind is Const:
        hoisted = _const_value(machine, operand)
        if hoisted is not None:
            return lambda frame: hoisted
        as_int = IntVal(operand.value, bytes=8, signed=False)
        int_to_ptr = machine.model.int_to_ptr
        allocator = machine.allocator
        return lambda frame: int_to_ptr(as_int, allocator)
    if kind is GlobalRef:
        name = operand.name
        globals_map = machine.globals

        def read_global(frame):
            try:
                return globals_map[name]
            except KeyError:
                raise InterpreterError(f"use of unknown global {name!r}") from None

        return read_global
    raise InterpreterError(f"cannot evaluate operand {operand!r}")


def _ptr_reader(machine, operand):
    """An operand accessor that coerces integers to pointers (``_pointer_operand``)."""
    int_to_ptr = machine.model.int_to_ptr
    allocator = machine.allocator

    if type(operand) is Temp:
        # Fused register read + pointer coercion (one call instead of two).
        slot = operand.index + _FRAME_RESERVED
        label = str(operand)

        def read_ptr(frame):
            value = frame[slot]
            kind = type(value)
            if kind is PtrVal:
                return value
            if kind is IntVal:
                return int_to_ptr(value, allocator)
            if value is UNDEF:
                raise InterpreterError(f"use of undefined temporary {label}")
            raise InterpreterError(f"expected a pointer, got {value!r}")

        return read_ptr

    read = _reader(machine, operand)

    def read_ptr(frame):
        value = read(frame)
        if type(value) is PtrVal:
            return value
        if type(value) is IntVal:
            return int_to_ptr(value, allocator)
        raise InterpreterError(f"expected a pointer, got {value!r}")

    return read_ptr


def _qualifier_appliers(machine, ptr_type: PointerType) -> tuple:
    """The model hooks a pointer of ``ptr_type`` passes through, in order."""
    appliers = []
    if ptr_type.qualifiers & Qualifiers.INPUT:
        appliers.append(machine.model.apply_input_qualifier)
    if ptr_type.qualifiers & Qualifiers.OUTPUT:
        appliers.append(machine.model.apply_output_qualifier)
    if ptr_type.pointee.is_const:
        appliers.append(machine.model.apply_const)
    return tuple(appliers)


def _is_pointer_sized_int(ctype) -> bool:
    return isinstance(ctype, IntType) and ctype.is_pointer_sized


# ---------------------------------------------------------------------------
# Function compilation
# ---------------------------------------------------------------------------


def compile_function(machine, function: Function) -> CompiledFunction:
    """Predecode ``function`` against ``machine``'s model, memory and timing."""
    instrs = function.instrs
    labels = function.label_index()
    timing = machine.config.timing
    base_cost = timing.base_instruction_cost
    branch_cost = timing.branch_cost
    call_cost = timing.call_cost
    stop = len(instrs)

    # Pass 1: register file size and alloca slot count.
    max_temp = -1
    nallocas = 0
    for instr in instrs:
        if instr.dest is not None and instr.dest.index > max_temp:
            max_temp = instr.dest.index
        for arg in instr.args:
            if type(arg) is Temp and arg.index > max_temp:
                max_temp = arg.index
        if instr.op is Opcode.ALLOCA:
            nallocas += 1
    nregs = max_temp + 2  # one extra scratch slot for dest-less value ops
    scratch = max_temp + 1 + _FRAME_RESERVED

    # Machine state bound once per compilation.
    model = machine.model
    ctx = machine.ctx
    memory = machine.memory
    allocator = machine.allocator
    hierarchy_access = machine.hierarchy.access
    collect_timing = machine.collect_timing
    shadow = machine.shadow
    shadow_get = shadow.get
    uses_shadow = model.uses_shadow
    clear_shadow = uses_shadow and model.clear_shadow_on_data_store
    check_access = model.check_access
    int_to_ptr = model.int_to_ptr
    ptr_to_int = model.ptr_to_int
    ptr_offset = model.ptr_offset
    pointer_bytes = model.pointer_bytes
    read_u64 = memory.read_u64
    read_small = memory.read_small
    write_small = memory.write_small
    write_ptr_raw = memory.write_ptr_raw
    load_ptr_no_meta = model.load_pointer_without_metadata
    reconcile = model.reconcile_loaded_pointer
    propagate_provenance = model.propagate_provenance
    # When the model keeps the default pointer-arithmetic policy (cursor moves
    # freely, bounds unchanged), pointer moves can be constructed inline
    # instead of dispatching through model.ptr_offset -> PtrVal.moved_by.
    inline_moves = type(model).ptr_offset is MemoryModel.ptr_offset
    inline_field = (inline_moves
                    and type(model).field_address is MemoryModel.field_address
                    and not model.narrow_field_bounds)
    # Dereference checks are inlined for the two known check policies; the
    # inline fast path only covers accesses the full check would *pass* (and
    # returns the same effective address) — anything unusual falls back to the
    # model's check_access, so traps, messages and trap counters are identical.
    model_check = type(model).check_access
    if model_check is MemoryModel.check_access:
        check_kind = 1
    elif model_check is Pdp11Model.check_access:
        check_kind = 2
    else:
        check_kind = 0

    handlers: list = []
    costs: list = []
    alloca_index = 0

    for index, instr in enumerate(instrs):
        op = instr.op
        next_pc = index + 1
        dest = instr.dest.index + _FRAME_RESERVED if instr.dest is not None else None
        cost = base_cost
        handler = None

        if op is Opcode.LABEL or op is Opcode.NOP:
            cost = 0
            handler = _make_fallthrough(next_pc)

        elif op is Opcode.JUMP:
            cost = branch_cost
            target = labels[instr.attrs["target"]]
            handler = _make_fallthrough(target)

        elif op is Opcode.CJUMP:
            cost = branch_cost
            read_cond = _reader(machine, instr.args[0])
            then_pc = labels[instr.attrs["then"]]
            else_pc = labels[instr.attrs["else"]]

            def handler(frame, read_cond=read_cond, then_pc=then_pc, else_pc=else_pc):
                condition = read_cond(frame)
                if type(condition) is IntVal:
                    return then_pc if condition.value != 0 else else_pc
                return else_pc if condition.is_null else then_pc

        elif op is Opcode.RET:
            if instr.args:
                read_value = _reader(machine, instr.args[0])

                def handler(frame, read_value=read_value, stop=stop):
                    frame[_RET] = read_value(frame)
                    return stop
            else:
                handler = _make_fallthrough(stop)

        elif op is Opcode.ALLOCA:
            slot = alloca_index
            alloca_index += 1
            size = instr.attrs.get("size", 8)
            alloc_type = instr.attrs.get("alloc_type")
            alignment = max(8, alloc_type.alignment(ctx) if alloc_type is not None else 8)
            name = instr.attrs.get("name", "")
            allocate_stack = allocator.allocate_stack
            make_pointer = model.make_pointer
            out = dest if dest is not None else scratch

            def handler(frame, slot=slot, size=size, name=name, alignment=alignment,
                        allocate_stack=allocate_stack, make_pointer=make_pointer,
                        out=out, next_pc=next_pc):
                allocas = frame[_ALLOCAS]
                pointer = allocas[slot]
                if pointer is None:
                    pointer = make_pointer(allocate_stack(size, name, alignment=alignment))
                    allocas[slot] = pointer
                frame[out] = pointer
                return next_pc

        elif op is Opcode.LOAD:
            read_ptr = _ptr_reader(machine, instr.args[0])
            ctype = instr.ctype
            out = dest if dest is not None else scratch
            if isinstance(ctype, PointerType) or _is_pointer_sized_int(ctype):
                is_ptr_type = isinstance(ctype, PointerType)
                appliers = _qualifier_appliers(machine, ctype) if is_ptr_type else ()
                signed = getattr(ctype, "signed", True)

                def handler(frame, read_ptr=read_ptr, machine=machine, out=out,
                            is_ptr_type=is_ptr_type, appliers=appliers, signed=signed,
                            next_pc=next_pc):
                    pointer = read_ptr(frame)
                    address = pointer.address
                    if check_kind == 1:
                        if not (pointer.tag and pointer.checked
                                and pointer.perms & 1
                                and pointer.base <= address
                                and address + pointer_bytes <= pointer.base + pointer.length
                                and not getattr(pointer.obj, "freed", False)
                                and not (address == 0 and pointer.obj is None)):
                            address = check_access(pointer, pointer_bytes, is_write=False)
                    elif check_kind == 2:
                        if address < 4096:
                            address = check_access(pointer, pointer_bytes, is_write=False)
                    else:
                        address = check_access(pointer, pointer_bytes, is_write=False)
                    machine.memory_accesses += 1
                    if collect_timing:
                        machine.cycles += hierarchy_access(address, pointer_bytes, is_write=False)
                    raw = read_u64(address)
                    entry = shadow_get(address) if uses_shadow else None
                    if is_ptr_type:
                        if entry is None:
                            loaded = load_ptr_no_meta(raw, allocator)
                        elif type(entry) is PtrVal:
                            loaded = reconcile(raw, entry, allocator)
                        elif type(entry) is IntVal:
                            loaded = int_to_ptr(entry.with_value(raw, provenance=entry.provenance),
                                                allocator)
                        else:
                            raise InterpreterError(f"corrupt shadow entry {entry!r}")
                        for apply in appliers:
                            loaded = apply(loaded)
                        frame[out] = loaded
                    else:
                        if type(entry) is IntVal and entry.unsigned == raw:
                            frame[out] = IntVal(raw, bytes=8, signed=signed,
                                                provenance=entry.provenance, pointer_sized=True)
                        elif type(entry) is PtrVal and entry.address == raw:
                            frame[out] = IntVal(raw, bytes=8, signed=signed,
                                                provenance=Provenance(entry), pointer_sized=True)
                        else:
                            frame[out] = IntVal(raw, bytes=8, signed=signed, pointer_sized=True)
                    return next_pc
            else:
                size = max(ctype.size(ctx), 1)
                signed = getattr(ctype, "signed", True)
                small = _small_ints(size, signed)

                def handler(frame, read_ptr=read_ptr, machine=machine, out=out,
                            size=size, signed=signed, small=small, next_pc=next_pc):
                    pointer = read_ptr(frame)
                    address = pointer.address
                    if check_kind == 1:
                        if not (pointer.tag and pointer.checked
                                and pointer.perms & 1
                                and pointer.base <= address
                                and address + size <= pointer.base + pointer.length
                                and not getattr(pointer.obj, "freed", False)
                                and not (address == 0 and pointer.obj is None)):
                            address = check_access(pointer, size, is_write=False)
                    elif check_kind == 2:
                        if address < 4096:
                            address = check_access(pointer, size, is_write=False)
                    else:
                        address = check_access(pointer, size, is_write=False)
                    machine.memory_accesses += 1
                    if collect_timing:
                        machine.cycles += hierarchy_access(address, size, is_write=False)
                    raw = read_small(address, size, signed)
                    if small is not None and 0 <= raw <= 256:
                        frame[out] = small[raw]
                    else:
                        frame[out] = IntVal(raw, bytes=size, signed=signed)
                    return next_pc

        elif op is Opcode.STORE:
            read_ptr = _ptr_reader(machine, instr.args[0])
            param_index = instr.attrs.get("param_index")
            if param_index is not None:
                def read_value(frame, param_index=param_index):
                    return frame[_ARGS][param_index]
            else:
                read_value = _reader(machine, instr.args[1])
            ctype = instr.ctype
            is_ptr_type = isinstance(ctype, PointerType)
            if is_ptr_type or _is_pointer_sized_int(ctype):

                def handler(frame, read_ptr=read_ptr, read_value=read_value, machine=machine,
                            is_ptr_type=is_ptr_type, next_pc=next_pc):
                    pointer = read_ptr(frame)
                    value = read_value(frame)
                    if is_ptr_type and type(value) is IntVal:
                        value = int_to_ptr(value, allocator)
                    address = pointer.address
                    if check_kind == 1:
                        if not (pointer.tag and pointer.checked
                                and pointer.perms & 2
                                and pointer.base <= address
                                and address + pointer_bytes <= pointer.base + pointer.length
                                and not getattr(pointer.obj, "freed", False)
                                and not (address == 0 and pointer.obj is None)):
                            address = check_access(pointer, pointer_bytes, is_write=True)
                    elif check_kind == 2:
                        if address < 4096:
                            address = check_access(pointer, pointer_bytes, is_write=True)
                    else:
                        address = check_access(pointer, pointer_bytes, is_write=True)
                    machine.memory_accesses += 1
                    if collect_timing:
                        machine.cycles += hierarchy_access(address, pointer_bytes, is_write=True)
                    raw = value.address if type(value) is PtrVal else value.unsigned
                    if clear_shadow and shadow:
                        for key in range(address - address % 8, address + pointer_bytes, 8):
                            if key in shadow:
                                del shadow[key]
                    write_ptr_raw(address, raw, pointer_bytes)
                    if uses_shadow:
                        if address & 7:
                            machine._shadow_unaligned = True
                        shadow[address] = value
                    return next_pc
            else:
                size = max(ctype.size(ctx), 1)
                coerce_bytes = min(ctype.size(ctx), 8) if isinstance(ctype, IntType) else None
                coerce_signed = getattr(ctype, "signed", True)

                def handler(frame, read_ptr=read_ptr, read_value=read_value, machine=machine,
                            size=size, coerce_bytes=coerce_bytes, coerce_signed=coerce_signed,
                            next_pc=next_pc):
                    pointer = read_ptr(frame)
                    value = read_value(frame)
                    if coerce_bytes is not None and type(value) is PtrVal:
                        value = ptr_to_int(value, bytes=coerce_bytes, signed=coerce_signed,
                                           pointer_sized=False)
                    address = pointer.address
                    if check_kind == 1:
                        if not (pointer.tag and pointer.checked
                                and pointer.perms & 2
                                and pointer.base <= address
                                and address + size <= pointer.base + pointer.length
                                and not getattr(pointer.obj, "freed", False)
                                and not (address == 0 and pointer.obj is None)):
                            address = check_access(pointer, size, is_write=True)
                    elif check_kind == 2:
                        if address < 4096:
                            address = check_access(pointer, size, is_write=True)
                    else:
                        address = check_access(pointer, size, is_write=True)
                    machine.memory_accesses += 1
                    if collect_timing:
                        machine.cycles += hierarchy_access(address, size, is_write=True)
                    if clear_shadow and shadow:
                        for key in range(address - address % 8, address + size, 8):
                            if key in shadow:
                                del shadow[key]
                    raw_value = value.unsigned if type(value) is IntVal else int(value)
                    write_small(address, size, raw_value)
                    return next_pc

        elif op is Opcode.GEP:
            read_ptr = _ptr_reader(machine, instr.args[0])
            read_idx = _reader(machine, instr.args[1])
            element_size = instr.attrs["element_size"]
            out = dest if dest is not None else scratch
            if inline_moves:
                def handler(frame, read_ptr=read_ptr, read_idx=read_idx,
                            element_size=element_size, out=out, next_pc=next_pc):
                    pointer = read_ptr(frame)
                    idx = read_idx(frame)
                    delta = (idx.value if type(idx) is IntVal else idx.address) * element_size
                    frame[out] = PtrVal((pointer.address + delta) & _ADDRESS_MASK,
                                        pointer.base, pointer.length, pointer.obj,
                                        pointer.perms, pointer.tag, pointer.checked)
                    return next_pc
            else:
                def handler(frame, read_ptr=read_ptr, read_idx=read_idx,
                            element_size=element_size, out=out, next_pc=next_pc):
                    pointer = read_ptr(frame)
                    idx = read_idx(frame)
                    delta = (idx.value if type(idx) is IntVal else idx.address) * element_size
                    frame[out] = ptr_offset(pointer, delta)
                    return next_pc

        elif op is Opcode.FIELD:
            read_ptr = _ptr_reader(machine, instr.args[0])
            field_type = instr.ctype.pointee if isinstance(instr.ctype, PointerType) else None
            field_size = field_type.size(ctx) if field_type is not None else 1
            offset = instr.attrs["offset"]
            field_address = model.field_address
            out = dest if dest is not None else scratch
            if inline_field:
                def handler(frame, read_ptr=read_ptr, offset=offset, out=out, next_pc=next_pc):
                    pointer = read_ptr(frame)
                    frame[out] = PtrVal((pointer.address + offset) & _ADDRESS_MASK,
                                        pointer.base, pointer.length, pointer.obj,
                                        pointer.perms, pointer.tag, pointer.checked)
                    return next_pc
            else:
                def handler(frame, read_ptr=read_ptr, offset=offset, field_size=field_size,
                            field_address=field_address, out=out, next_pc=next_pc):
                    frame[out] = field_address(read_ptr(frame), offset, field_size)
                    return next_pc

        elif op is Opcode.PTRADD:
            read_ptr = _ptr_reader(machine, instr.args[0])
            read_delta = _reader(machine, instr.args[1])
            out = dest if dest is not None else scratch
            if inline_moves:
                def handler(frame, read_ptr=read_ptr, read_delta=read_delta, out=out,
                            next_pc=next_pc):
                    pointer = read_ptr(frame)
                    delta = read_delta(frame).value
                    frame[out] = PtrVal((pointer.address + delta) & _ADDRESS_MASK,
                                        pointer.base, pointer.length, pointer.obj,
                                        pointer.perms, pointer.tag, pointer.checked)
                    return next_pc
            else:
                def handler(frame, read_ptr=read_ptr, read_delta=read_delta, out=out,
                            next_pc=next_pc):
                    frame[out] = ptr_offset(read_ptr(frame), read_delta(frame).value)
                    return next_pc

        elif op is Opcode.PTRDIFF:
            read_a = _ptr_reader(machine, instr.args[0])
            read_b = _ptr_reader(machine, instr.args[1])
            element_size = instr.attrs.get("element_size", 1)
            ptr_diff = model.ptr_diff
            out = dest if dest is not None else scratch

            def handler(frame, read_a=read_a, read_b=read_b, element_size=element_size,
                        ptr_diff=ptr_diff, out=out, next_pc=next_pc):
                frame[out] = IntVal(ptr_diff(read_a(frame), read_b(frame), element_size),
                                    bytes=8, signed=True)
                return next_pc

        elif op is Opcode.PTRTOINT:
            read_ptr = _ptr_reader(machine, instr.args[0])
            target = instr.ctype
            width = min(target.size(ctx), 8)
            signed = getattr(target, "signed", True)
            pointer_sized = _is_pointer_sized_int(target)
            out = dest if dest is not None else scratch

            def handler(frame, read_ptr=read_ptr, width=width, signed=signed,
                        pointer_sized=pointer_sized, out=out, next_pc=next_pc):
                frame[out] = ptr_to_int(read_ptr(frame), bytes=width, signed=signed,
                                        pointer_sized=pointer_sized)
                return next_pc

        elif op is Opcode.INTTOPTR:
            read_value = _reader(machine, instr.args[0])
            appliers = (_qualifier_appliers(machine, instr.ctype)
                        if isinstance(instr.ctype, PointerType) else ())
            out = dest if dest is not None else scratch

            def handler(frame, read_value=read_value, appliers=appliers, out=out, next_pc=next_pc):
                value = read_value(frame)
                pointer = value if type(value) is PtrVal else int_to_ptr(value, allocator)
                for apply in appliers:
                    pointer = apply(pointer)
                frame[out] = pointer
                return next_pc

        elif op is Opcode.BITCAST:
            read_value = _reader(machine, instr.args[0])
            deconst = model.deconst if instr.attrs.get("deconst") else None
            appliers = (_qualifier_appliers(machine, instr.ctype)
                        if isinstance(instr.ctype, PointerType) else ())
            out = dest if dest is not None else scratch

            def handler(frame, read_value=read_value, deconst=deconst, appliers=appliers,
                        out=out, next_pc=next_pc):
                value = read_value(frame)
                if type(value) is PtrVal:
                    if deconst is not None:
                        value = deconst(value)
                    for apply in appliers:
                        value = apply(value)
                frame[out] = value
                return next_pc

        elif op is Opcode.INTCAST:
            read_value = _reader(machine, instr.args[0])
            target = instr.ctype
            width = min(target.size(ctx), 8)
            signed = getattr(target, "signed", True)
            pointer_sized = _is_pointer_sized_int(target)
            out = dest if dest is not None else scratch

            def handler(frame, read_value=read_value, width=width, signed=signed,
                        pointer_sized=pointer_sized, out=out, next_pc=next_pc):
                value = read_value(frame)
                if type(value) is PtrVal:
                    frame[out] = ptr_to_int(value, bytes=width, signed=signed,
                                            pointer_sized=pointer_sized)
                elif (value.bytes == width and value.signed == signed
                      and value.pointer_sized == pointer_sized):
                    frame[out] = value  # no-op conversion: IntVal is immutable
                else:
                    frame[out] = value.converted(bytes=width, signed=signed,
                                                 pointer_sized=pointer_sized)
                return next_pc

        elif op is Opcode.BINOP:
            handler = _make_binop(machine, instr, dest if dest is not None else scratch,
                                  next_pc, propagate_provenance, ptr_to_int)

        elif op is Opcode.UNOP:
            read_value = _reader(machine, instr.args[0])
            negate = instr.attrs["operator"] == "neg"
            out = dest if dest is not None else scratch

            def handler(frame, read_value=read_value, negate=negate, out=out, next_pc=next_pc):
                value = read_value(frame)
                if type(value) is not IntVal:
                    raise InterpreterError("unary arithmetic on a pointer value")
                frame[out] = value.with_value(-value.value if negate else ~value.value,
                                              provenance=None)
                return next_pc

        elif op is Opcode.CMP:
            read_left = _reader(machine, instr.args[0])
            read_right = _reader(machine, instr.args[1])
            operator = instr.attrs["operator"]
            compare = _CMP_FUNCS.get(operator)
            ptr_compare = model.ptr_compare
            out = dest if dest is not None else scratch
            if compare is None:
                def handler(frame, read_left=read_left, read_right=read_right, operator=operator):
                    read_left(frame)
                    read_right(frame)
                    raise KeyError(operator)
            else:
                def handler(frame, read_left=read_left, read_right=read_right,
                            operator=operator, compare=compare, ptr_compare=ptr_compare,
                            out=out, next_pc=next_pc):
                    left = read_left(frame)
                    right = read_right(frame)
                    left_is_ptr = type(left) is PtrVal
                    if left_is_ptr and type(right) is PtrVal:
                        result = ptr_compare(left, right, operator)
                    else:
                        result = compare(left.address if left_is_ptr else left.value,
                                         right.address if type(right) is PtrVal else right.value)
                    frame[out] = _TRUE if result else _FALSE
                    return next_pc

        elif op is Opcode.CALL:
            cost = call_cost
            handler = _make_call(machine, instr, dest, next_pc)

        else:
            def handler(frame, op=op):
                raise InterpreterError(f"unsupported IR opcode {op}")

        handlers.append(handler)
        costs.append(cost)

    return CompiledFunction(function, handlers, costs, nregs, alloca_index)


def _make_fallthrough(next_pc: int):
    return lambda frame: next_pc


def _make_binop(machine, instr, out: int, next_pc: int, propagate_provenance, ptr_to_int):
    read_left = _reader(machine, instr.args[0])
    read_right = _reader(machine, instr.args[1])
    operator = instr.attrs["operator"]
    target = instr.ctype
    ctx = machine.ctx
    width = min(target.size(ctx), 8) if target is not None else 8
    signed = getattr(target, "signed", True)
    pointer_sized = _is_pointer_sized_int(target)
    is_division = operator in ("/", "%")
    fast_op = _INT_BINOPS.get(operator)
    is_div_op = operator == "/"
    small = _small_ints(width, signed) if not pointer_sized else None
    # Skipping the provenance hook for provenance-free operands is only valid
    # for the base implementation (no source -> None); a model that overrides
    # the hook gets called unconditionally.
    fast_noprov = type(machine.model).propagate_provenance is MemoryModel.propagate_provenance

    if fast_op is None and not is_division:
        def handler(frame):
            read_left(frame)
            read_right(frame)
            raise InterpreterError(f"unknown binary operator {operator!r}")
        return handler

    def handler(frame):
        left = read_left(frame)
        right = read_right(frame)
        if type(left) is not IntVal:
            left = ptr_to_int(left, bytes=8, signed=False, pointer_sized=True)
        if type(right) is not IntVal:
            right = ptr_to_int(right, bytes=8, signed=False, pointer_sized=True)
        a = left.value
        b = right.value
        if is_division:
            if b == 0:
                raise UndefinedBehaviorError("integer division by zero")
            quotient = abs(a) // abs(b)
            signed_quotient = quotient if (a >= 0) == (b >= 0) else -quotient
            raw = signed_quotient if is_div_op else a - signed_quotient * b
        else:
            raw = fast_op(a, b)
        if fast_noprov and left.provenance is None and right.provenance is None:
            if small is not None and 0 <= raw <= 256:
                frame[out] = small[raw]
                return next_pc
            provenance = None  # matches the base model: no source, no provenance
        else:
            provenance = propagate_provenance(left, right, raw)
        frame[out] = IntVal(raw, bytes=width, signed=signed, provenance=provenance,
                            pointer_sized=pointer_sized)
        return next_pc

    return handler


def _make_call(machine, instr, dest: int | None, next_pc: int):
    callee = instr.attrs["callee"]
    arg_readers = tuple(_reader(machine, arg) for arg in instr.args)
    function = machine.module.functions.get(callee)
    result_type = instr.ctype

    if function is not None and function.instrs:
        int_to_ptr = machine.model.int_to_ptr
        allocator = machine.allocator
        params = function.params

        def make_coercer(param_type):
            if not isinstance(param_type, PointerType):
                return None
            appliers = _qualifier_appliers(machine, param_type)

            def coerce(value):
                if type(value) is PtrVal:
                    for apply in appliers:
                        value = apply(value)
                    return value
                if type(value) is IntVal:
                    return int_to_ptr(value, allocator)
                return value

            return coerce

        plan = tuple(
            (reader, make_coercer(params[i][1]) if i < len(params) else None)
            for i, reader in enumerate(arg_readers)
        )
        machine_call = machine._call

        def handler(frame):
            arguments = []
            append = arguments.append
            for reader, coerce in plan:
                value = reader(frame)
                append(coerce(value) if coerce is not None else value)
            result = machine_call(function, arguments)
            if dest is not None:
                frame[dest] = result
            return next_pc

        return handler

    intrinsic = INTRINSICS.get(callee)
    if intrinsic is None:
        def handler(frame):
            raise InterpreterError(f"call to unknown function {callee!r}")
        return handler

    def handler(frame):
        arguments = [reader(frame) for reader in arg_readers]
        result = intrinsic(machine, arguments, result_type)
        if dest is not None:
            frame[dest] = result
        return next_pc

    return handler

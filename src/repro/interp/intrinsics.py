"""The intrinsic C library provided by the abstract machine.

mini-C has no headers; these functions are implemented directly against the
machine (the way ``malloc`` itself must live partly outside the C abstract
machine, §2 of the paper).  Each intrinsic receives the running
:class:`~repro.interp.machine.AbstractMachine`, the evaluated argument values
and the expected result type, and returns a runtime value.

Memory-touching intrinsics go through the machine's checked access helpers,
so they are subject to the active memory model exactly like compiled code —
``memcpy`` in particular copies pointer metadata the way tagged memory
would, which is what lets capability-oblivious copies move pointers around
without laundering them into forgeable integers.
"""

from __future__ import annotations

from repro.common.errors import InterpreterError, UndefinedBehaviorError
from repro.interp.values import IntVal, PtrVal


class ExitProgram(Exception):
    """Raised by ``exit``/``abort`` to unwind the interpreter."""

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code


def _as_int(value) -> int:
    if isinstance(value, IntVal):
        return value.value
    if isinstance(value, PtrVal):
        return value.address
    raise InterpreterError(f"expected an integer argument, got {value!r}")


def _as_size(value) -> int:
    if isinstance(value, IntVal):
        return value.unsigned
    if isinstance(value, PtrVal):
        return value.address
    raise InterpreterError(f"expected a size argument, got {value!r}")


def _as_ptr(machine, value) -> PtrVal:
    if isinstance(value, PtrVal):
        return value
    if isinstance(value, IntVal):
        return machine.model.int_to_ptr(value, machine.allocator)
    raise InterpreterError(f"expected a pointer argument, got {value!r}")


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------


def _malloc(machine, args, result_type):
    size = _as_size(args[0])
    return machine.heap_allocate(size)


def _calloc(machine, args, result_type):
    count = _as_size(args[0])
    size = _as_size(args[1])
    return machine.heap_allocate(count * size)  # memory starts zeroed


def _free(machine, args, result_type):
    pointer = _as_ptr(machine, args[0])
    if pointer.is_null:
        return None
    machine.heap_free(pointer)
    return None


def _realloc(machine, args, result_type):
    pointer = _as_ptr(machine, args[0])
    new_size = _as_size(args[1])
    new_ptr = machine.heap_allocate(new_size)
    if not pointer.is_null and pointer.obj is not None:
        old_size = pointer.obj.size
        machine.copy_memory(new_ptr, pointer, min(old_size, new_size))
        machine.heap_free(pointer)
    return new_ptr


# ---------------------------------------------------------------------------
# Memory operations
# ---------------------------------------------------------------------------


def _memcpy(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    src = _as_ptr(machine, args[1])
    length = _as_size(args[2])
    machine.copy_memory(dst, src, length)
    return dst


def _memmove(machine, args, result_type):
    return _memcpy(machine, args, result_type)


def _memset(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    byte = _as_int(args[1]) & 0xFF
    length = _as_size(args[2])
    machine.write_checked_bytes(dst, bytes([byte]) * length)
    return dst


def _memcmp(machine, args, result_type):
    a = machine.read_checked_bytes(_as_ptr(machine, args[0]), _as_size(args[2]))
    b = machine.read_checked_bytes(_as_ptr(machine, args[1]), _as_size(args[2]))
    if a == b:
        return IntVal(0, bytes=4)
    return IntVal(-1 if a < b else 1, bytes=4)


def _memchr(machine, args, result_type):
    pointer = _as_ptr(machine, args[0])
    needle = _as_int(args[1]) & 0xFF
    length = _as_size(args[2])
    data = machine.read_checked_bytes(pointer, length)
    index = data.find(bytes([needle]))
    if index < 0:
        return machine.model.null_pointer()
    return machine.model.ptr_offset(pointer, index)


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


def _strlen(machine, args, result_type):
    return IntVal(len(machine.read_cstring(_as_ptr(machine, args[0]))), bytes=8, signed=False)


def _strcmp(machine, args, result_type):
    a = machine.read_cstring(_as_ptr(machine, args[0]))
    b = machine.read_cstring(_as_ptr(machine, args[1]))
    if a == b:
        return IntVal(0, bytes=4)
    return IntVal(-1 if a < b else 1, bytes=4)


def _strncmp(machine, args, result_type):
    limit = _as_size(args[2])
    a = machine.read_cstring(_as_ptr(machine, args[0]))[:limit]
    b = machine.read_cstring(_as_ptr(machine, args[1]))[:limit]
    if a == b:
        return IntVal(0, bytes=4)
    return IntVal(-1 if a < b else 1, bytes=4)


def _strcpy(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    text = machine.read_cstring(_as_ptr(machine, args[1]))
    machine.write_checked_bytes(dst, text + b"\x00")
    return dst


def _strncpy(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    limit = _as_size(args[2])
    text = machine.read_cstring(_as_ptr(machine, args[1]))[:limit]
    padded = text + b"\x00" * (limit - len(text))
    machine.write_checked_bytes(dst, padded[:limit])
    return dst


def _strchr(machine, args, result_type):
    pointer = _as_ptr(machine, args[0])
    needle = _as_int(args[1]) & 0xFF
    text = machine.read_cstring(pointer) + b"\x00"
    index = text.find(bytes([needle]))
    if index < 0:
        return machine.model.null_pointer()
    return machine.model.ptr_offset(pointer, index)


def _strcat(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    existing = machine.read_cstring(dst)
    suffix = machine.read_cstring(_as_ptr(machine, args[1]))
    tail = machine.model.ptr_offset(dst, len(existing))
    machine.write_checked_bytes(tail, suffix + b"\x00")
    return dst


# ---------------------------------------------------------------------------
# Formatted output
# ---------------------------------------------------------------------------


def _parse_spec(spec: bytes) -> tuple[str, int, int | None]:
    """Split a printf conversion spec into (flags, width, precision).

    Length modifiers (``l``/``z``/``h``) only select the argument width in C;
    mini-C values already carry their width, so they are stripped.  Flags are
    the C99 set this runtime honours: ``-`` (left justify), ``0`` (zero pad),
    ``+`` / space (sign of signed conversions).
    """
    text = spec.translate(None, b"lzh").decode("ascii")
    k = 0
    flags = ""
    while k < len(text) and text[k] in "-+ 0":
        flags += text[k]
        k += 1
    width = 0
    while k < len(text) and text[k].isdigit():
        width = width * 10 + int(text[k])
        k += 1
    precision: int | None = None
    if k < len(text) and text[k] == ".":
        k += 1
        precision = 0
        while k < len(text) and text[k].isdigit():
            precision = precision * 10 + int(text[k])
            k += 1
    return flags, width, precision


def _format_number(digits: str, sign: str, prefix: str, flags: str,
                   width: int, precision: int | None) -> bytes:
    """Assemble one numeric conversion with C99 padding rules.

    ``precision`` is the minimum digit count (``%.3d`` of 5 -> ``005``); an
    explicit precision of 0 prints value 0 as the empty string.  The ``0``
    flag pads with zeros *after* the sign/prefix up to the field width, and is
    ignored when ``-`` or a precision is given — both exactly as C printf.
    """
    if precision is not None:
        if precision == 0 and digits == "0":
            digits = ""
        else:
            digits = digits.zfill(precision)
    body = sign + prefix + digits
    if width > len(body):
        if "-" in flags:
            body += " " * (width - len(body))
        elif "0" in flags and precision is None:
            body = sign + prefix + digits.zfill(width - len(sign) - len(prefix))
        else:
            body = body.rjust(width)
    return body.encode()


def _pad_text(data: bytes, flags: str, width: int) -> bytes:
    """Field-width padding for the non-numeric conversions (``%c``/``%s``)."""
    if width <= len(data):
        return data
    pad = b" " * (width - len(data))
    return data + pad if "-" in flags else pad + data


def _format(machine, template: bytes, args: list) -> bytes:
    out = bytearray()
    arg_index = 0
    i = 0
    length = len(template)
    while i < length:
        # bulk-copy the literal run up to the next conversion
        percent = template.find(b"%", i)
        if percent < 0:
            out += template[i:]
            break
        out += template[i:percent]
        # scan the conversion specification
        j = percent + 1
        while j < length and template[j] in b"-+ 0123456789.lzh":
            j += 1
        spec = template[percent + 1 : j]
        conv = template[j : j + 1]
        i = j + 1
        if conv == b"%":
            out += b"%"
            continue
        if arg_index >= len(args):
            out += b"%" + spec + conv
            continue
        value = args[arg_index]
        arg_index += 1
        flags, width, precision = _parse_spec(spec)
        if conv in (b"d", b"i"):
            n = _as_int(value)
            sign = "-" if n < 0 else "+" if "+" in flags else " " if " " in flags else ""
            out += _format_number(str(abs(n)), sign, "", flags, width, precision)
        elif conv == b"u":
            out += _format_number(str(_as_size(value)), "", "", flags, width, precision)
        elif conv in (b"x", b"X"):
            text = format(_as_size(value), "x")
            if conv == b"X":
                text = text.upper()
            out += _format_number(text, "", "", flags, width, precision)
        elif conv == b"c":
            out += _pad_text(bytes([_as_int(value) & 0xFF]), flags, width)
        elif conv == b"s":
            data = machine.read_cstring(_as_ptr(machine, value))
            if precision is not None:
                data = data[:precision]
            out += _pad_text(data, flags, width)
        elif conv == b"p":
            out += _format_number(format(_as_size(value), "x"), "", "0x",
                                  flags, width, precision)
        else:
            out += b"%" + spec + conv
    return bytes(out)


def _printf(machine, args, result_type):
    template = machine.read_cstring(_as_ptr(machine, args[0]))
    text = _format(machine, template, args[1:])
    machine.emit_output(text)
    return IntVal(len(text), bytes=4)


def _sprintf(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    template = machine.read_cstring(_as_ptr(machine, args[1]))
    text = _format(machine, template, args[2:])
    machine.write_checked_bytes(dst, text + b"\x00")
    return IntVal(len(text), bytes=4)


def _snprintf(machine, args, result_type):
    dst = _as_ptr(machine, args[0])
    limit = _as_size(args[1])
    template = machine.read_cstring(_as_ptr(machine, args[2]))
    text = _format(machine, template, args[3:])
    clipped = text[: max(limit - 1, 0)]
    if limit > 0:
        machine.write_checked_bytes(dst, clipped + b"\x00")
    return IntVal(len(text), bytes=4)


def _putchar(machine, args, result_type):
    machine.emit_output(bytes([_as_int(args[0]) & 0xFF]))
    return IntVal(_as_int(args[0]), bytes=4)


def _puts(machine, args, result_type):
    machine.emit_output(machine.read_cstring(_as_ptr(machine, args[0])) + b"\n")
    return IntVal(0, bytes=4)


# ---------------------------------------------------------------------------
# Miscellaneous
# ---------------------------------------------------------------------------


def _abs(machine, args, result_type):
    return IntVal(abs(_as_int(args[0])), bytes=4)


def _labs(machine, args, result_type):
    return IntVal(abs(_as_int(args[0])), bytes=8)


def _exit(machine, args, result_type):
    raise ExitProgram(_as_int(args[0]) if args else 0)


def _abort(machine, args, result_type):
    raise ExitProgram(134)


def _assert(machine, args, result_type):
    if not _as_int(args[0]):
        raise UndefinedBehaviorError("assertion failed in interpreted program")
    return None


def _rand(machine, args, result_type):
    return IntVal(machine.rng.randint(0, 0x7FFFFFFF), bytes=4)


def _srand(machine, args, result_type):
    machine.reseed(_as_int(args[0]))
    return None


def _mini_output_int(machine, args, result_type):
    machine.emit_output(str(_as_int(args[0])).encode() + b"\n")
    return None


def _mini_checkpoint(machine, args, result_type):
    machine.checkpoints.append(_as_int(args[0]))
    return None


INTRINSICS = {
    "malloc": _malloc,
    "calloc": _calloc,
    "free": _free,
    "realloc": _realloc,
    "memcpy": _memcpy,
    "memmove": _memmove,
    "memset": _memset,
    "memcmp": _memcmp,
    "memchr": _memchr,
    "strlen": _strlen,
    "strcmp": _strcmp,
    "strncmp": _strncmp,
    "strcpy": _strcpy,
    "strncpy": _strncpy,
    "strchr": _strchr,
    "strcat": _strcat,
    "printf": _printf,
    "sprintf": _sprintf,
    "snprintf": _snprintf,
    "putchar": _putchar,
    "puts": _puts,
    "abs": _abs,
    "labs": _labs,
    "exit": _exit,
    "abort": _abort,
    "assert": _assert,
    "rand": _rand,
    "srand": _srand,
    "mini_output_int": _mini_output_int,
    "mini_checkpoint": _mini_checkpoint,
}

"""Object allocator for the abstract machine.

The C abstract machine divides memory into *objects* — regions with an
associated type and lifetime (§3.1.2).  The allocator owns a flat 64-bit
virtual address space, carves objects out of three regions (globals, heap,
stack) and remembers every allocation so that:

* capability models can attach per-object bounds to pointers;
* the Relaxed interpreter can map an address back to the containing object
  when reconstructing a pointer from an integer;
* temporal errors (use-after-free) are detectable, and the garbage collector
  (:mod:`repro.gc`) can enumerate live objects.

Addresses are deliberately placed **above 4 GiB** so that the WIDE idiom
(storing a pointer in a 32-bit integer) genuinely loses information, exactly
as it does on modern 64-bit platforms — the paper notes this idiom is already
broken everywhere and observes how rare it has become.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.common.bitops import align_up
from repro.common.errors import InterpreterError

#: Default region bases (all above 2**32; see module docstring).
GLOBAL_BASE = 0x1_0000_0000
HEAP_BASE = 0x1_4000_0000
STACK_BASE = 0x1_8000_0000


@dataclass(slots=True)
class HeapObject:
    """One allocation: a C object with identity, bounds and lifetime."""

    uid: int
    base: int
    size: int
    kind: str  # 'global' | 'heap' | 'stack' | 'string'
    name: str = ""
    freed: bool = False
    #: set by the garbage collector when the object is relocated.
    forwarded_to: int | None = None

    @property
    def top(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.top

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        state = "freed" if self.freed else "live"
        return f"obj#{self.uid} {self.kind} [{self.base:#x},{self.top:#x}) {state} {self.name}"


class ObjectAllocator:
    """Bump allocators for the global, heap and stack regions.

    Stack allocations are grouped into frames so that returning from a
    function retires every object the frame created (their addresses become
    invalid, which is how the models detect dangling stack pointers).
    """

    __slots__ = ("_next", "_alignment", "_uid", "objects", "_bases",
                 "_by_base", "_frames", "bytes_allocated", "allocation_count")

    def __init__(
        self,
        *,
        global_base: int = GLOBAL_BASE,
        heap_base: int = HEAP_BASE,
        stack_base: int = STACK_BASE,
        alignment: int = 16,
    ) -> None:
        self._next = {"global": global_base, "heap": heap_base, "stack": stack_base}
        self._alignment = alignment
        self._uid = 0
        self.objects: dict[int, HeapObject] = {}
        self._bases: list[int] = []
        self._by_base: dict[int, HeapObject] = {}
        self._frames: list[tuple[int, list[HeapObject]]] = []
        self.bytes_allocated = 0
        self.allocation_count = 0

    # ------------------------------------------------------------------

    def _allocate(self, size: int, kind: str, name: str = "", *, alignment: int | None = None) -> HeapObject:
        if size < 0:
            raise InterpreterError(f"allocation of negative size {size}")
        if size < 1:
            size = 1
        alignment = alignment or self._alignment
        region = "global" if kind in ("global", "string") else kind
        # Power-of-two alignments (the only ones the machine issues) round
        # inline; anything else goes through the generic helper.
        cursor = self._next[region]
        if alignment & (alignment - 1) == 0:
            base = (cursor + alignment - 1) & -alignment
        else:
            base = align_up(cursor, alignment)
        step = self._alignment
        if step & (step - 1) == 0:
            self._next[region] = base + ((size + step - 1) & -step)
        else:
            self._next[region] = base + align_up(size, step)
        self._uid = uid = self._uid + 1
        obj = HeapObject(uid=uid, base=base, size=size, kind=kind, name=name)
        self.objects[uid] = obj
        bases = self._bases
        if not bases or base > bases[-1]:
            # Bump allocation means new objects almost always carry the
            # highest base yet (the stack region sits above heap and
            # globals), so the sorted index is an append, not an insort.
            bases.append(base)
        else:
            bisect.insort(bases, base)
        self._by_base[base] = obj
        self.bytes_allocated += size
        self.allocation_count += 1
        return obj

    def allocate_global(self, size: int, name: str, *, alignment: int | None = None) -> HeapObject:
        return self._allocate(size, "global", name, alignment=alignment)

    def allocate_string(self, size: int, name: str) -> HeapObject:
        return self._allocate(size, "string", name)

    def allocate_heap(self, size: int, *, alignment: int | None = None) -> HeapObject:
        return self._allocate(size, "heap", alignment=alignment)

    def allocate_stack(self, size: int, name: str = "", *, alignment: int | None = None) -> HeapObject:
        obj = self._allocate(size, "stack", name, alignment=alignment)
        if self._frames:
            self._frames[-1][1].append(obj)
        return obj

    # ------------------------------------------------------------------
    # Stack frame lifetime
    # ------------------------------------------------------------------

    def push_frame(self) -> None:
        """Open a call frame, remembering the stack cursor so it can be reused."""
        self._frames.append((self._next["stack"], []))

    def pop_frame(self) -> None:
        """Close the current frame.

        Every object the frame allocated is retired (so dangling pointers to
        it trap) and removed from the address index, and the stack cursor is
        rewound — subsequent calls reuse the same addresses, exactly as a real
        call stack does.  Without the rewind every call would touch cold cache
        lines and the timing model would overstate stack traffic.
        """
        if not self._frames:
            raise InterpreterError("pop_frame with no active frame")
        saved_cursor, objects = self._frames.pop()
        bases = self._bases
        by_base = self._by_base
        for obj in reversed(objects):
            obj.freed = True
            by_base.pop(obj.base, None)
            # Frame objects are the newest allocations: nearly always a pop
            # off the end of the sorted index rather than a mid-list delete.
            if bases and bases[-1] == obj.base:
                bases.pop()
            else:
                index = bisect.bisect_left(bases, obj.base)
                if index < len(bases) and bases[index] == obj.base:
                    del bases[index]
        self._next["stack"] = saved_cursor

    # ------------------------------------------------------------------
    # Heap lifetime
    # ------------------------------------------------------------------

    def free(self, obj: HeapObject) -> None:
        if obj.kind != "heap":
            raise InterpreterError(f"free() of non-heap object {obj}")
        if obj.freed:
            raise InterpreterError(f"double free of {obj}")
        obj.freed = True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find(self, address: int) -> HeapObject | None:
        """Find the live object containing ``address`` (Relaxed-model lookup)."""
        index = bisect.bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        obj = self._by_base[self._bases[index]]
        if obj.contains(address) and not obj.freed:
            return obj
        return None

    def live_objects(self) -> list[HeapObject]:
        return [obj for obj in self.objects.values() if not obj.freed]

    def live_heap_bytes(self) -> int:
        return sum(obj.size for obj in self.objects.values() if obj.kind == "heap" and not obj.freed)

"""Fixed-width integer helpers.

The ISA simulator and the abstract machine both model 64-bit two's-complement
arithmetic on top of Python's arbitrary-precision integers.  These helpers
centralise the masking and sign manipulation so the rest of the code can read
like the pseudocode in the CHERI ISA reference.
"""

from __future__ import annotations


def mask(bits: int) -> int:
    """Return an all-ones mask of ``bits`` bits (``mask(8) == 0xFF``)."""
    if bits < 0:
        raise ValueError("bit width must be non-negative")
    return (1 << bits) - 1


def truncate(value: int, bits: int) -> int:
    """Truncate ``value`` to its low ``bits`` bits (unsigned result)."""
    return value & mask(bits)


def zero_extend(value: int, bits: int) -> int:
    """Zero-extend a ``bits``-wide value (identical to :func:`truncate`)."""
    return truncate(value, bits)


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend a ``bits``-wide value to a Python int.

    A zero-width value has no bits and therefore no sign: the result is 0
    (matching :func:`truncate`, whose zero-width result is also 0).  Negative
    widths are rejected explicitly rather than surfacing as a confusing
    ``ValueError: negative shift count`` from ``1 << (bits - 1)``.
    """
    if bits < 0:
        raise ValueError(f"bit width must be non-negative, got {bits}")
    if bits == 0:
        return 0
    value = truncate(value, bits)
    sign_bit = 1 << (bits - 1)
    return (value ^ sign_bit) - sign_bit


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer.

    Zero-width and negative widths follow :func:`sign_extend`: 0 for width 0,
    ``ValueError`` with an explicit message for negative widths.
    """
    return sign_extend(value, bits)


def to_unsigned(value: int, bits: int = 64) -> int:
    """Interpret ``value`` as an unsigned ``bits``-wide integer."""
    return truncate(value, bits)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return align_down(value + alignment - 1, alignment)


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when ``value`` is a multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return (value & (alignment - 1)) == 0


def bit_field(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & mask(width)


def set_bit_field(value: int, low: int, width: int, field: int) -> int:
    """Return ``value`` with bits ``[low, low+width)`` replaced by ``field``."""
    cleared = value & ~(mask(width) << low)
    return cleared | ((field & mask(width)) << low)

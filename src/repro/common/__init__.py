"""Shared infrastructure used by every subsystem of the reproduction.

The :mod:`repro.common` package deliberately has no dependencies on the rest
of the library so that every other package (ISA model, simulator, mini-C
front end, interpreters, analysis) can import it freely.
"""

from repro.common.errors import (
    ReproError,
    MemorySafetyError,
    BoundsViolation,
    TagViolation,
    PermissionViolation,
    AlignmentViolation,
    SimulationError,
    CompilationError,
    LexError,
    ParseError,
    TypeCheckError,
    InterpreterError,
    TrapError,
    UndefinedBehaviorError,
)
from repro.common.bitops import (
    mask,
    sign_extend,
    zero_extend,
    truncate,
    to_signed,
    to_unsigned,
    align_down,
    align_up,
    is_aligned,
    bit_field,
    set_bit_field,
)
from repro.common.config import CacheConfig, MachineConfig, TimingConfig
from repro.common.rng import DeterministicRng

__all__ = [
    "ReproError",
    "MemorySafetyError",
    "BoundsViolation",
    "TagViolation",
    "PermissionViolation",
    "AlignmentViolation",
    "SimulationError",
    "CompilationError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "InterpreterError",
    "TrapError",
    "UndefinedBehaviorError",
    "mask",
    "sign_extend",
    "zero_extend",
    "truncate",
    "to_signed",
    "to_unsigned",
    "align_down",
    "align_up",
    "is_aligned",
    "bit_field",
    "set_bit_field",
    "CacheConfig",
    "MachineConfig",
    "TimingConfig",
    "DeterministicRng",
]

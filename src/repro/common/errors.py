"""Exception hierarchy for the whole reproduction.

The hierarchy mirrors the layers of the system:

* :class:`ReproError` — root of everything raised intentionally by the library.
* :class:`MemorySafetyError` — hardware-style protection traps raised by the
  capability model, the tagged memory and the abstract-machine memory models
  (bounds, tag, permission and alignment violations).
* :class:`CompilationError` — problems in the mini-C front end (lexing,
  parsing, type checking, IR generation).
* :class:`SimulationError` / :class:`TrapError` — problems while executing
  machine code on the ISA simulator.
* :class:`InterpreterError` / :class:`UndefinedBehaviorError` — problems while
  executing IR on the abstract-machine interpreter.

Keeping protection traps as a distinct subtree is important: the evaluation
(Table 3) distinguishes between a program that *runs and produces the right
answer*, one that *traps* (the memory model rejects the idiom), and one that
*silently produces a wrong answer* (the model is unsound for the idiom).
"""

from __future__ import annotations

import pickle


def _rebuild_error(cls, args, state):
    """Reconstruct a :class:`ReproError` on the far side of a pickle boundary.

    Constructors in this hierarchy take keyword-only metadata and may rewrite
    the message (:class:`CompilationError` appends the source location), so
    the default ``Exception.__reduce__`` — which re-invokes ``cls(*args)`` —
    would either fail or double-apply that rewriting.  Rebuilding bypasses
    ``__init__`` and restores ``args`` plus the structured attributes
    verbatim.
    """
    exc = cls.__new__(cls)
    Exception.__init__(exc, *args)
    for name, value in state.items():
        setattr(exc, name, value)
    return exc


class ReproError(Exception):
    """Base class of every exception intentionally raised by this library.

    Every subclass pickles losslessly (``__reduce__`` below): trap causes,
    fault addresses and source locations survive a multiprocessing boundary,
    so the sharded difftest service never falls back to parsing messages.
    Subclasses with keyword-only constructor metadata override
    :meth:`_pickle_state` to name the attributes that must travel.
    """

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, self._pickle_state()))

    def _pickle_state(self) -> dict:
        return {}


# ---------------------------------------------------------------------------
# Memory-safety traps (shared by the ISA simulator and the interpreters)
# ---------------------------------------------------------------------------


class MemorySafetyError(ReproError):
    """A protection violation detected by a memory-safe implementation.

    Instances carry an optional ``address`` and ``capability`` describing the
    faulting access so that tests and debuggers can assert on the precise
    cause of the trap.  ``cause`` is a short symbolic category (``"bounds"``,
    ``"tag"``, ``"uaf"``, ...) used by the differential-testing oracle to
    bucket traps without parsing messages; each subclass supplies a default.
    """

    #: default symbolic trap category, overridden by subclasses and refinable
    #: per raise site via the ``cause`` keyword.
    default_cause = "safety"

    def __init__(self, message: str, *, address: int | None = None, capability=None,
                 cause: str | None = None):
        super().__init__(message)
        self.address = address
        self.capability = capability
        self.cause = cause or self.default_cause

    def _pickle_state(self) -> dict:
        capability = self.capability
        if capability is not None:
            # The faulting capability can reference interpreter-internal
            # object graphs (heap objects, allocator state) that have no
            # business crossing a process boundary; degrade to its repr
            # rather than poisoning the whole trap.
            try:
                pickle.dumps(capability)
            except Exception:
                capability = repr(capability)
        return {"address": self.address, "capability": capability,
                "cause": self.cause}


class BoundsViolation(MemorySafetyError):
    """An access fell outside the bounds associated with a pointer."""

    default_cause = "bounds"


class TagViolation(MemorySafetyError):
    """A capability with a cleared tag was used for memory access or jump."""

    default_cause = "tag"


class PermissionViolation(MemorySafetyError):
    """An access requested a permission the capability does not grant."""

    default_cause = "permission"


class AlignmentViolation(MemorySafetyError):
    """A capability (or capability-sized access) was not naturally aligned."""

    default_cause = "alignment"


# ---------------------------------------------------------------------------
# mini-C front end
# ---------------------------------------------------------------------------


class CompilationError(ReproError):
    """Base class for all front-end failures.

    ``line`` and ``column`` are 1-based source coordinates when known.
    """

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", col {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column

    def _pickle_state(self) -> dict:
        return {"line": self.line, "column": self.column}


class LexError(CompilationError):
    """The lexer encountered an invalid token."""


class ParseError(CompilationError):
    """The parser encountered a construct outside the mini-C grammar."""


class TypeCheckError(CompilationError):
    """Semantic analysis rejected the program."""


# ---------------------------------------------------------------------------
# ISA simulator
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """The ISA simulator was asked to do something impossible (bad encoding,
    unknown register, program ran off the end of memory, ...)."""


class TrapError(SimulationError):
    """A synchronous exception raised by an executing instruction.

    ``cause`` is a short symbolic string (e.g. ``"bounds"``, ``"tag"``,
    ``"permission"``, ``"overflow"``, ``"syscall"``) used by the trap tests.
    """

    def __init__(self, message: str, *, cause: str = "trap", pc: int | None = None):
        super().__init__(message)
        self.cause = cause
        self.pc = pc

    def _pickle_state(self) -> dict:
        return {"cause": self.cause, "pc": self.pc}


# ---------------------------------------------------------------------------
# Abstract-machine interpreter
# ---------------------------------------------------------------------------


class InterpreterError(ReproError):
    """The IR interpreter reached an invalid state (bad IR, missing function)."""


class UndefinedBehaviorError(InterpreterError):
    """The interpreted program relied on behaviour the active memory model
    defines as undefined (the model chose to report rather than continue)."""


# ---------------------------------------------------------------------------
# Differential-sweep service
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """The sharded difftest service could not satisfy a request: a resume
    journal from a different sweep, an unusable worker pool, or an injection
    spec that does not fit the corpus."""


class JournalError(ServiceError):
    """A sweep journal is unreadable beyond torn-tail recovery: missing or
    wrong header, or a corrupt line in the *interior* of the file (a torn
    final line is recovered automatically, not reported here)."""


class MergeError(ServiceError):
    """A multi-host journal merge cannot produce a trustworthy result:
    header identity mismatch across the input journals, an index gap (a
    shard is incomplete), an overlap (one index claimed by two journals), or
    two journals that disagree on the same cell record.  The merge refuses
    loudly rather than pick arbitrarily — the merged artifacts must be
    provably identical to a single-host serial run or not exist at all."""

"""A small deterministic pseudo-random number generator.

Workload generators (packet traces, zlib input files, Olden tree shapes) and
the synthetic corpus generator all need reproducible randomness that does not
depend on Python's global :mod:`random` state.  The generator is a 64-bit
xorshift* — tiny, fast and adequate for workload synthesis.
"""

from __future__ import annotations

from repro.common.bitops import mask

_MASK64 = mask(64)


class DeterministicRng:
    """xorshift64* PRNG with convenience helpers used by workload generators."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15):
        if seed == 0:
            seed = 0x9E3779B97F4A7C15
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Advance the generator and return a 64-bit unsigned value."""
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in ``[low, high]``."""
        if high < low:
            raise ValueError("high must be >= low")
        span = high - low + 1
        return low + self.next_u64() % span

    def random(self) -> float:
        """Return a float in ``[0, 1)``."""
        return self.next_u64() / float(1 << 64)

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def bytes(self, count: int) -> bytes:
        """Return ``count`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < count:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:count])

    def shuffle(self, items: list) -> None:
        """Fisher–Yates shuffle in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

"""Configuration dataclasses shared by the simulator and the interpreters.

The defaults follow the evaluation platform described in §5.2 of the paper:
a CHERI softcore synthesised at 100 MHz on a Stratix IV FPGA with a 16 KB L1
data cache and a 64 KB L2 cache, and DRAM that is fast relative to the CPU
clock (cache misses are common but comparatively cheap).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a single cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line size * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class TimingConfig:
    """Latency model for the memory hierarchy and basic instruction costs.

    ``dram_latency`` is deliberately modest: the paper notes that, at 100 MHz,
    DDR DRAM is fast relative to the CPU, so misses are common but cheap.
    """

    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=16 * 1024))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=64 * 1024, hit_latency=6))
    dram_latency: int = 30
    base_instruction_cost: int = 1
    branch_cost: int = 2
    call_cost: int = 3
    clock_hz: int = 100_000_000


@dataclass(frozen=True)
class MachineConfig:
    """Top-level configuration for a simulated machine or abstract machine."""

    memory_bytes: int = 64 * 1024 * 1024
    stack_bytes: int = 1 * 1024 * 1024
    heap_base: int = 0x1000_0000
    stack_top: int = 0x3000_0000
    capability_bytes: int = 32
    integer_pointer_bytes: int = 8
    timing: TimingConfig = field(default_factory=TimingConfig)
    trace: bool = False

    def pointer_bytes(self, *, capabilities: bool) -> int:
        """Size of a pointer under the MIPS ABI vs. a capability ABI."""
        return self.capability_bytes if capabilities else self.integer_pointer_bytes

"""Corruption-aware deterministic merge of per-host difftest journals.

A multi-host sweep runs ``run_difftest --host-shard i/N`` on each of N
hosts: every host journals its deterministic interleaved slice
(``index % N == i``) of the same seeded program stream.  This module
recombines those journals into one index-ordered record list whose derived
artifacts are **bit-identical** to a single-host serial run of the whole
sweep — or it refuses, loudly.

Refusal, not repair, is the design stance.  The merged Table 5 is a claimed
measurement; any hole papered over here (a missing shard filled with
guesses, an overlap resolved by picking a journal arbitrarily, two journals
disagreeing on one cell) would turn it into fiction.  Every such condition
raises :class:`~repro.common.errors.MergeError` with a diagnostic naming
the journals and indices involved, and the CLI exits non-zero.

What *is* tolerated — because it is exactly the damage an append crash can
produce and the journal format is designed to survive — is a torn final
line in an input journal.  The torn tail is recovered in memory (the input
file is never modified; it belongs to the host that wrote it) and reported
via :attr:`MergedSweep.recoveries`; the index it would have carried is then
simply missing, which the gap check reports with a ``--resume`` hint.

Checks, in order:

1. every input parses as a journal (kind/version checked by the journal
   layer; torn tails recovered in memory and reported);
2. all headers agree on the sweep identity (seed, count, models, budget,
   generator version, analyze flag);
3. no two inputs are the same shard / no shard declarations collide, and
   every journal's records respect its own declared shard membership
   (a record outside ``index % N == i`` means the journal is corrupt or
   mislabeled);
4. no index is claimed by two journals (identical duplicate records are an
   *overlap*; differing ones are a *conflict* — distinct diagnostics, both
   fatal);
5. the union covers ``range(count)`` exactly (a gap names the missing
   indices and the journal(s) whose shard they belong to).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.common.errors import MergeError
from repro.difftest.journal import JournalState, load_journal

#: header fields that define the sweep's identity for merging.  host_shard
#: is deliberately absent — it is *expected* to differ per journal and is
#: validated structurally (distinct, consistent N, membership) instead.
IDENTITY_FIELDS = ("seed", "count", "models", "budget", "generator_version",
                   "analyze")


@dataclass
class MergedSweep:
    """A verified merge: full-sweep records plus recovery provenance."""

    #: the canonical sweep-identity header (host_shard stripped).
    header: dict
    #: every cell record of the sweep, ordered by program index.
    records: list = field(default_factory=list)
    #: one entry per input journal whose torn tail was recovered in memory:
    #: ``{"journal", "valid_bytes", "dropped_bytes", "torn_index"}``.
    recoveries: list = field(default_factory=list)
    #: input journal paths, in the order given.
    sources: list = field(default_factory=list)
    #: stats-trailer lines collected from the inputs, each annotated with
    #: the journal it came from (``"journal"`` key).  Trailers never affect
    #: the merged records; ``run_difftest --merge --stats`` aggregates their
    #: telemetry snapshots with ``metrics.merge_snapshots``.
    stats_trailers: list = field(default_factory=list)


def _identity(header: dict) -> dict:
    return {name: header.get(name) for name in IDENTITY_FIELDS}


def _guess_torn_index(tail: bytes) -> int | None:
    """Best-effort read of the torn record's index, for the recovery report."""
    match = re.search(rb'"index"\s*:\s*(-?\d+)', tail)
    return int(match.group(1)) if match else None


def _check_shard_membership(path: str, state: JournalState) -> None:
    shard = state.header.get("host_shard")
    count = state.header.get("count")
    for index in state.records:
        if not isinstance(index, int) or not 0 <= index < count:
            raise MergeError(
                f"{path} carries record index {index!r}, outside the sweep "
                f"range 0..{count - 1}: the journal is corrupt")
        if shard is not None:
            i, n = shard
            if index % n != i:
                raise MergeError(
                    f"{path} declares host shard {i}/{n} but carries record "
                    f"index {index} (index % {n} == {index % n}): the journal "
                    f"is corrupt or mislabeled; refusing to merge")


def _owner_hint(index: int, states: dict[str, JournalState]) -> str:
    """Which input journal's shard *should* have covered ``index``."""
    for path, state in states.items():
        shard = state.header.get("host_shard")
        if shard is None or index % shard[1] == shard[0]:
            return path
    return "an input journal"


def merge_journals(paths) -> MergedSweep:
    """Merge per-host shard journals into one verified full-sweep record set.

    Raises :class:`~repro.common.errors.MergeError` on any condition that
    would make the merged artifacts differ from a single-host serial run;
    raises :class:`~repro.common.errors.JournalError` if an input is not a
    readable journal at all.  Input files are never modified.
    """
    paths = [str(p) for p in paths]
    if not paths:
        raise MergeError("no journals to merge")
    if len(set(paths)) != len(paths):
        raise MergeError("the same journal path was given more than once")

    states: dict[str, JournalState] = {}
    recoveries: list[dict] = []
    for path in paths:
        state = load_journal(path)
        if state.corrupt_tail:
            # Recovered in memory only: the file belongs to the host that
            # wrote it, and --resume over there is the fix, not a merge-side
            # rewrite.
            recoveries.append({
                "journal": path,
                "valid_bytes": state.valid_bytes,
                "dropped_bytes": len(state.corrupt_tail),
                "torn_index": _guess_torn_index(state.corrupt_tail),
            })
        states[path] = state

    # -- identity ------------------------------------------------------
    first_path = paths[0]
    identity = _identity(states[first_path].header)
    for path in paths[1:]:
        other = _identity(states[path].header)
        if other != identity:
            mismatched = "; ".join(
                f"{name}: {identity[name]!r} vs {other[name]!r}"
                for name in IDENTITY_FIELDS if identity[name] != other[name])
            raise MergeError(
                f"{path} belongs to a different sweep than {first_path} "
                f"({mismatched}); refusing to merge")

    count = identity["count"]
    if not isinstance(count, int) or count < 0:
        raise MergeError(f"{first_path} header carries an unusable count "
                         f"{count!r}")

    # -- shard declarations -------------------------------------------
    declared = [(path, state.header.get("host_shard"))
                for path, state in states.items()]
    shard_ns = {tuple(shard)[1] for _, shard in declared if shard}
    if len(shard_ns) > 1:
        raise MergeError(
            "input journals disagree on the shard count: "
            + ", ".join(f"{path} declares "
                        + (f"{shard[0]}/{shard[1]}" if shard else "whole-sweep")
                        for path, shard in declared))
    seen_shards: dict[tuple[int, int], str] = {}
    for path, shard in declared:
        if shard is None:
            continue
        shard = tuple(shard)
        if shard in seen_shards:
            raise MergeError(
                f"{path} and {seen_shards[shard]} both declare host shard "
                f"{shard[0]}/{shard[1]}: the same shard was journaled twice")
        seen_shards[shard] = path
    for path, state in states.items():
        _check_shard_membership(path, state)

    # -- overlap / conflict -------------------------------------------
    merged: dict[int, dict] = {}
    owner: dict[int, str] = {}
    for path in paths:
        for index, record in states[path].records.items():
            if index in merged:
                if json.dumps(record, sort_keys=True) != \
                        json.dumps(merged[index], sort_keys=True):
                    raise MergeError(
                        f"conflict at program index {index}: {owner[index]} "
                        f"and {path} carry different cell records for the "
                        f"same program; the sweep inputs are not trustworthy")
                raise MergeError(
                    f"overlap at program index {index}: both {owner[index]} "
                    f"and {path} claim it; shard journals must partition the "
                    f"sweep")
            merged[index] = record
            owner[index] = path

    # -- coverage ------------------------------------------------------
    missing = [index for index in range(count) if index not in merged]
    if missing:
        hints = {}
        for index in missing:
            hints.setdefault(_owner_hint(index, states), []).append(index)
        detail = "; ".join(
            f"{path} is missing {indices[:8]}"
            + (f" (+{len(indices) - 8} more)" if len(indices) > 8 else "")
            for path, indices in hints.items())
        raise MergeError(
            f"the merged journals cover {len(merged)}/{count} programs "
            f"({detail}); finish the incomplete shard(s) with "
            f"run_difftest --resume before merging")

    header = dict(states[first_path].header)
    header["host_shard"] = None
    return MergedSweep(
        header=header,
        records=[merged[index] for index in range(count)],
        recoveries=recoveries,
        sources=paths,
        stats_trailers=[dict(trailer, journal=path)
                        for path in paths
                        for trailer in states[path].stats_trailers],
    )

"""Delta-debugging shrinker for divergent generated programs.

Given a program and a target ``(model, category)`` cell from the oracle, the
reducer minimizes the program **at the AST level** while preserving the
cell's classification, so every matrix entry can be backed by a small
reproducer instead of a 100-line generated program.

The passes, run to fixpoint:

1. *ddmin over statements* — remove contiguous chunks of ``main``'s body
   (halving granularity, the classic Zeller/Hildebrandt scheme) and, inside
   surviving compound statements, of loop and branch bodies;
2. *control-structure unwrapping* — replace a ``for``/``while``/``if`` by
   its body (one unrolled iteration is often all the divergence needs);
3. *expression simplification* — replace a binary expression by one of its
   operands, drop casts, shrink integer literals toward zero;
4. *dead top-level pruning* — drop helper functions, globals and struct
   definitions no longer referenced by the surviving statements.

Every candidate edit is validated by re-rendering and re-running under the
baseline plus the target model only (two executions, not seven), so
reduction stays cheap.  The whole process is deterministic: pass order is
fixed and candidate order follows AST order.  ``docs/difftest.md`` shows
the workflow for reproducing a corpus entry's reduction by hand.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.difftest.generator import GeneratedProgram
from repro.difftest.oracle import BASELINE, classify_results
from repro.difftest.runner import DifferentialRunner
from repro.minic import astnodes as ast
from repro.minic.unparse import unparse


@dataclass
class Reduction:
    """Outcome of one reduction: the minimized program plus bookkeeping."""

    program: GeneratedProgram
    model: str
    category: str
    tests_run: int
    original_statements: int
    reduced_statements: int

    @property
    def source(self) -> str:
        return self.program.source


def _count_statements(node) -> int:
    if isinstance(node, ast.TranslationUnit):
        return sum(_count_statements(f) for f in node.functions) + len(node.declarations)
    if isinstance(node, ast.FunctionDef):
        return _count_statements(node.body)
    if isinstance(node, ast.Block):
        return sum(1 + _count_statements(s) for s in node.statements)
    for attr in ("body", "then_branch", "else_branch"):
        child = getattr(node, attr, None)
        if child is not None:
            return _count_statements(child)
    return 0


class _Reducer:
    def __init__(self, program: GeneratedProgram, model: str, category: str,
                 runner: DifferentialRunner) -> None:
        self.model = model
        self.category = category
        self.runner = runner
        self.tests_run = 0
        self.current = copy.deepcopy(program)
        self.current.invalidate_source()
        if not self._holds(self.current):
            raise ValueError(
                f"program does not reproduce {category!r} under {model!r} to begin with")

    # ------------------------------------------------------------------

    def _holds(self, candidate: GeneratedProgram) -> bool:
        self.tests_run += 1
        candidate.invalidate_source()
        try:
            result = self.runner.run_program(
                candidate, models=tuple(dict.fromkeys((BASELINE, self.model))))
        except Exception:
            return False
        classification = classify_results(result)
        return classification.get(self.model) == self.category

    def _try(self, candidate: GeneratedProgram) -> bool:
        if self._holds(candidate):
            self.current = candidate
            return True
        return False

    # ------------------------------------------------------------------
    # Pass 1: ddmin over statement lists
    # ------------------------------------------------------------------

    def _blocks(self, unit: ast.TranslationUnit):
        """Every mutable statement list in the unit, main's body first."""
        out = []

        def walk_stmt(stmt) -> None:
            if isinstance(stmt, ast.Block):
                out.append(stmt.statements)
                for child in stmt.statements:
                    walk_stmt(child)
            elif isinstance(stmt, (ast.For, ast.While)):
                walk_stmt(stmt.body)
            elif isinstance(stmt, ast.If):
                walk_stmt(stmt.then_branch)
                walk_stmt(stmt.else_branch)
            elif stmt is None:
                return

        for function in reversed(unit.functions):   # main is last
            if function.body is not None:
                out.append(function.body.statements)
                for child in function.body.statements:
                    walk_stmt(child)
        return out

    def _ddmin_pass(self) -> bool:
        shrunk = False
        block_index = 0
        while True:
            blocks = self._blocks(self.current.unit)
            if block_index >= len(blocks):
                return shrunk
            statements = blocks[block_index]
            chunk = max(len(statements) // 2, 1)
            while chunk >= 1 and statements:
                start = 0
                while start < len(statements):
                    candidate = copy.deepcopy(self.current)
                    cand_block = self._blocks(candidate.unit)[block_index]
                    del cand_block[start:start + chunk]
                    if self._try(candidate):
                        statements = self._blocks(self.current.unit)[block_index]
                        shrunk = True
                    else:
                        start += chunk
                chunk //= 2
            block_index += 1

    # ------------------------------------------------------------------
    # Pass 2: unwrap control structures
    # ------------------------------------------------------------------

    def _unwrap_pass(self) -> bool:
        shrunk = False
        progress = True
        while progress:
            progress = False
            blocks = self._blocks(self.current.unit)
            for block_index, statements in enumerate(blocks):
                for i, stmt in enumerate(statements):
                    replacement = None
                    if isinstance(stmt, (ast.For, ast.While)) and \
                            isinstance(stmt.body, ast.Block):
                        replacement = list(stmt.body.statements)
                        if isinstance(stmt, ast.For) and stmt.init is not None:
                            replacement = [stmt.init] + replacement
                    elif isinstance(stmt, ast.If) and isinstance(stmt.then_branch, ast.Block):
                        replacement = list(stmt.then_branch.statements)
                    if replacement is None:
                        continue
                    candidate = copy.deepcopy(self.current)
                    cand_block = self._blocks(candidate.unit)[block_index]
                    cand_block[i:i + 1] = copy.deepcopy(replacement)
                    if self._try(candidate):
                        shrunk = progress = True
                        break
                if progress:
                    break
        return shrunk

    # ------------------------------------------------------------------
    # Pass 3: expression simplification
    # ------------------------------------------------------------------

    @staticmethod
    def _site_get(container, key):
        return container[key] if isinstance(container, list) else getattr(container, key)

    @staticmethod
    def _site_set(container, key, value) -> None:
        if isinstance(container, list):
            container[key] = value
        else:
            setattr(container, key, value)

    def _expr_sites(self, unit: ast.TranslationUnit):
        """(container, key) pairs addressing every expression slot, AST order."""
        sites: list[tuple] = []

        def visit_expr(container, key) -> None:
            node = self._site_get(container, key)
            if not isinstance(node, ast.Expr):
                return
            sites.append((container, key))
            for child_key in ("operand", "left", "right", "target", "value",
                              "condition", "then_value", "else_value",
                              "base", "index"):
                if hasattr(node, child_key):
                    visit_expr(node, child_key)
            if isinstance(node, ast.Call):
                for i in range(len(node.args)):
                    visit_expr(node.args, i)

        def visit_stmt(stmt) -> None:
            if stmt is None:
                return
            if isinstance(stmt, ast.Block):
                for child in stmt.statements:
                    visit_stmt(child)
            elif isinstance(stmt, ast.ExprStmt):
                visit_expr(stmt, "expr")
            elif isinstance(stmt, ast.Declaration):
                visit_expr(stmt, "initializer")
            elif isinstance(stmt, ast.If):
                visit_expr(stmt, "condition")
                visit_stmt(stmt.then_branch)
                visit_stmt(stmt.else_branch)
            elif isinstance(stmt, ast.While):
                visit_expr(stmt, "condition")
                visit_stmt(stmt.body)
            elif isinstance(stmt, ast.For):
                visit_stmt(stmt.init)
                visit_expr(stmt, "condition")
                visit_expr(stmt, "step")
                visit_stmt(stmt.body)
            elif isinstance(stmt, ast.Return):
                visit_expr(stmt, "value")

        for function in unit.functions:
            if function.body is not None:
                visit_stmt(function.body)
        return sites

    def _simplify_pass(self) -> bool:
        shrunk = False
        progress = True
        while progress:
            progress = False
            sites = self._expr_sites(self.current.unit)
            for site_index, (container, key) in enumerate(sites):
                node = self._site_get(container, key)
                replacements: list[ast.Expr] = []
                if isinstance(node, ast.Binary):
                    replacements = [node.left, node.right]
                elif isinstance(node, ast.Cast):
                    replacements = [node.operand]
                elif isinstance(node, ast.Conditional):
                    replacements = [node.then_value, node.else_value]
                elif isinstance(node, ast.IntLiteral) and node.value not in (0, 1):
                    replacements = [ast.IntLiteral(value=0), ast.IntLiteral(value=1)]
                for replacement in replacements:
                    candidate = copy.deepcopy(self.current)
                    cand_container, cand_key = self._expr_sites(candidate.unit)[site_index]
                    self._site_set(cand_container, cand_key, copy.deepcopy(replacement))
                    if self._try(candidate):
                        shrunk = progress = True
                        break
                if progress:
                    break
        return shrunk

    # ------------------------------------------------------------------
    # Pass 4: prune unreferenced top-level entities
    # ------------------------------------------------------------------

    def _prune_pass(self) -> bool:
        shrunk = False
        changed = True
        while changed:
            changed = False
            unit = self.current.unit
            for i, function in enumerate(unit.functions[:-1]):   # never drop main
                candidate = copy.deepcopy(self.current)
                del candidate.unit.functions[i]
                if self._try(candidate):
                    shrunk = changed = True
                    break
            if changed:
                continue
            for i in range(len(unit.declarations)):
                candidate = copy.deepcopy(self.current)
                del candidate.unit.declarations[i]
                if self._try(candidate):
                    shrunk = changed = True
                    break
            if changed:
                continue
            for i in range(len(self.current.structs)):
                candidate = copy.deepcopy(self.current)
                del candidate.structs[i]
                if self._try(candidate):
                    shrunk = changed = True
                    break
        return shrunk

    # ------------------------------------------------------------------

    def run(self) -> GeneratedProgram:
        progress = True
        while progress:
            progress = False
            progress |= self._ddmin_pass()
            progress |= self._unwrap_pass()
            progress |= self._simplify_pass()
            progress |= self._prune_pass()
        self.current.invalidate_source()
        return self.current


def reduce_program(program: GeneratedProgram, model: str, category: str, *,
                   runner: DifferentialRunner | None = None) -> Reduction:
    """Minimize ``program`` while it still classifies as ``category`` under
    ``model`` (vs the PDP-11 baseline)."""
    runner = runner or DifferentialRunner(analyze=False)
    original_statements = _count_statements(program.unit)
    reducer = _Reducer(program, model, category, runner)
    reduced = reducer.run()
    return Reduction(
        program=reduced,
        model=model,
        category=category,
        tests_run=reducer.tests_run,
        original_statements=original_statements,
        reduced_statements=_count_statements(reduced.unit),
    )

"""Deliberate faults for the sharded difftest service.

The supervisor's recovery paths — worker respawn, per-program timeout,
block-engine fallback, torn-journal repair — are themselves code, and code
that only runs during real failures is code that rots.  This module turns
each failure mode into something a CLI flag (``run_difftest --inject``) or a
test can schedule deterministically:

* ``crash``   — the worker process exits hard (``os._exit``) before running
  the program: the segfault/OOM-kill equivalent.
* ``hang``    — the worker sleeps forever on the program: exercises the
  wall-clock timeout and the kill/respawn path.
* ``engine``  — the interpreter is armed to raise an internal (non-trap)
  exception from inside a superinstruction handler: exercises the
  block-engine -> single-step fallback in ``AbstractMachine._execute``.
* ``journal`` — the supervisor appends a torn tail to the write-ahead
  journal and immediately runs the recovery cycle: exercises
  ``journal.load_journal``'s truncate-and-continue path.
* ``cache-torn`` / ``cache-bitflip`` — the worker's persistent artifact
  cache (:mod:`repro.interp.diskcache`) truncates / flips a bit in the
  entry it just wrote, then immediately reloads it: exercises the
  checksum-validation, quarantine and regenerate-on-corruption paths.
* ``cache-stale-lock`` — a dead-PID lock file is planted on the entry
  before the store: exercises the stale-lock takeover path.

Faults default to *transient*: they fire on a program's first attempt only,
so the retry produces the true record and the sweep's merged artifacts stay
bit-identical to a fault-free run — which is exactly the property the
fault-injection acceptance test pins.  ``always=True`` makes a fault
persistent, driving the program into quarantine
(``error:engine``/``error:timeout``) instead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.common.errors import ServiceError

#: exit status of an injected worker crash: distinguishable from both a clean
#: exit and a signal death in the supervisor's logs.
CRASH_EXIT = 113

#: recognised fault kinds, in the order ``--inject all`` schedules them.
#: The ``cache-*`` kinds target the persistent artifact cache and are
#: no-ops when the sweep runs without ``--artifact-cache``.
FAULT_KINDS = ("crash", "hang", "engine", "journal",
               "cache-torn", "cache-bitflip", "cache-stale-lock")


class InjectedEngineError(RuntimeError):
    """The internal error an armed superinstruction raises.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: the whole
    point is to look like an interpreter bug, which the dispatch loop must
    absorb via the single-step fallback rather than classify as a trap.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` fires at corpus index ``index``."""

    kind: str
    index: int
    #: transient faults (the default) fire on attempt 0 only; persistent
    #: faults fire on every attempt and force quarantine.
    always: bool = False


class FaultPlan:
    """The set of faults scheduled for one sweep (picklable; sent to workers)."""

    def __init__(self, faults=()):  # noqa: D401 - trivial container
        self.faults = tuple(faults)
        for fault in self.faults:
            if fault.kind not in FAULT_KINDS:
                raise ServiceError(f"unknown fault kind {fault.kind!r}; "
                                   f"known: {', '.join(FAULT_KINDS)}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def _active(self, kind: str, index: int, attempt: int) -> bool:
        return any(fault.kind == kind and fault.index == index
                   and (fault.always or attempt == 0)
                   for fault in self.faults)

    # -- worker side ---------------------------------------------------

    def fire_worker_fault(self, index: int, attempt: int) -> None:
        """Crash or hang the calling worker if a fault is due.  Called in the
        worker process immediately before it runs program ``index``."""
        if self._active("crash", index, attempt):
            os._exit(CRASH_EXIT)
        if self._active("hang", index, attempt):
            while True:  # killed by the supervisor's timeout path
                time.sleep(3600)

    def machine_hook(self, index: int, attempt: int):
        """The per-program machine hook arming an engine fault, or ``None``."""
        if not self._active("engine", index, attempt):
            return None

        def hook(machine, _model_name):
            machine.arm_engine_fault(InjectedEngineError)

        return hook

    def cache_fault(self, index: int, attempt: int) -> str | None:
        """The disk-cache fault kind due for program ``index``, or ``None``.

        The worker arms it on the process's :class:`DiskCache` tier before
        running the program; it fires at the next entry store.  Cache faults
        are recover-in-place (the cache quarantines and re-stores inside the
        same attempt), so ``always`` has no quarantine semantics here — the
        fault simply fires on every attempt instead of the first.
        """
        for kind in ("cache-torn", "cache-bitflip", "cache-stale-lock"):
            if self._active(kind, index, attempt):
                return kind
        return None

    # -- supervisor side -----------------------------------------------

    def journal_fault_index(self) -> int | None:
        """The index whose completion should tear the journal, or ``None``."""
        for fault in self.faults:
            if fault.kind == "journal":
                return fault.index
        return None


def _spread_indices(count: int) -> list[int]:
    """Seven well-separated corpus indices (the ``--inject all`` schedule)."""
    indices = [count * (k + 1) // 8 for k in range(len(FAULT_KINDS))]
    if len(set(indices)) < len(FAULT_KINDS):
        indices = list(range(len(FAULT_KINDS)))
    return indices


def parse_inject_spec(spec: str, count: int) -> FaultPlan:
    """Parse a ``--inject`` value into a :class:`FaultPlan`.

    Grammar: ``all`` (one transient fault of every kind at spread indices),
    or a comma-separated list of ``kind[:index[:always]]`` items.  An
    omitted index falls back to the kind's slot in the spread schedule.
    Worker-side fault indices (everything but ``journal``) must be mutually
    distinct — two faults racing for one program would make the retry
    outcome schedule-dependent, which the bit-identity contract forbids.
    """
    items = [item.strip() for item in spec.split(",") if item.strip()]
    if not items:
        raise ServiceError("--inject got an empty fault spec")
    if "all" in items:
        if items != ["all"]:
            raise ServiceError("--inject all cannot be combined with other faults")
        if count < len(FAULT_KINDS):
            raise ServiceError(f"--inject all needs a corpus of >= "
                               f"{len(FAULT_KINDS)} programs, got {count}")
        return FaultPlan([Fault(kind, index)
                          for kind, index in zip(FAULT_KINDS, _spread_indices(count))])
    defaults = dict(zip(FAULT_KINDS, _spread_indices(max(count, len(FAULT_KINDS)))))
    faults = []
    for item in items:
        kind, _, rest = item.partition(":")
        if kind not in FAULT_KINDS:
            raise ServiceError(f"unknown fault kind {kind!r} in --inject; "
                               f"known: {', '.join(FAULT_KINDS)}")
        index_text, _, flag = rest.partition(":")
        if flag and flag != "always":
            raise ServiceError(f"bad fault modifier {flag!r} in --inject "
                               f"(only 'always' is recognised)")
        try:
            index = int(index_text) if index_text else defaults[kind]
        except ValueError:
            raise ServiceError(f"bad fault index {index_text!r} in --inject") from None
        if not 0 <= index < count:
            raise ServiceError(f"fault index {index} is outside the corpus "
                               f"(0..{count - 1})")
        faults.append(Fault(kind, index, always=flag == "always"))
    worker_side = [f for f in faults if f.kind != "journal"]
    if len({f.index for f in worker_side}) < len(worker_side):
        raise ServiceError("worker-side faults (crash/hang/engine/cache-*) "
                           "must target distinct programs")
    return FaultPlan(faults)

"""Differential-execution fuzzing of the memory-safety models.

The paper's Table 3 asks one question — *how do real C idioms behave under
different interpretations of the C abstract machine?* — and answers it with
eight hand-extracted test cases.  This package turns the interpreter's
post-PR-3 speed into scenario diversity, in the spirit of TriCheck's
cross-layer litmus sweeps:

* :mod:`repro.difftest.generator` builds seeded, grammar-directed mini-C
  programs as :mod:`repro.minic.astnodes` trees, biased toward the paper's
  idiom catalogue (int<->pointer casts, out-of-bounds probes, sub-object
  arithmetic, union/memcpy aliasing, use-after-free);
* :mod:`repro.difftest.runner` compiles each program once per pointer layout
  and replays it under every registered memory model on the block-compiled
  engine;
* :mod:`repro.difftest.oracle` classifies every per-model outcome against
  the PDP-11 baseline into a total trap/corruption/benign taxonomy and
  renders the Table-5 matrix plus a JSON corpus of interesting seeds;
* :mod:`repro.difftest.reducer` delta-debugs any divergent program at the
  AST level down to a minimal reproducer with the same classification.

``scripts/run_difftest.py`` is the command-line entry point;
``tests/test_difftest.py`` pins a 64-program sweep as a regression oracle.
"""

from repro.difftest.generator import (
    GENERATOR_VERSION,
    GeneratedProgram,
    ProgramGenerator,
    generate_corpus,
    generate_program,
)
from repro.difftest.oracle import (
    CATEGORIES,
    classify_results,
    classify_sweep,
    corpus_document,
    format_matrix,
    summarize,
)
from repro.difftest.runner import DifferentialRunner, ProgramResult
from repro.difftest.reducer import reduce_program

__all__ = [
    "GENERATOR_VERSION",
    "GeneratedProgram",
    "ProgramGenerator",
    "generate_corpus",
    "generate_program",
    "DifferentialRunner",
    "ProgramResult",
    "CATEGORIES",
    "classify_results",
    "classify_sweep",
    "corpus_document",
    "format_matrix",
    "summarize",
    "reduce_program",
]

"""Differential-execution fuzzing of the memory-safety models.

The paper's Table 3 asks one question — *how do real C idioms behave under
different interpretations of the C abstract machine?* — and answers it with
eight hand-extracted test cases.  This package turns the interpreter's
post-PR-3 speed into scenario diversity, in the spirit of TriCheck's
cross-layer litmus sweeps:

* :mod:`repro.difftest.generator` builds seeded, grammar-directed mini-C
  programs as :mod:`repro.minic.astnodes` trees, biased toward the paper's
  idiom catalogue (int<->pointer casts, out-of-bounds probes, sub-object
  arithmetic, union/memcpy aliasing, use-after-free);
* :mod:`repro.difftest.runner` compiles each program once per pointer layout
  and replays it under every registered memory model on the block-compiled
  engine;
* :mod:`repro.difftest.oracle` classifies every per-model outcome against
  the PDP-11 baseline into a total trap/corruption/benign taxonomy and
  renders the Table-5 matrix plus a JSON corpus of interesting seeds;
* :mod:`repro.difftest.reducer` delta-debugs any divergent program at the
  AST level down to a minimal reproducer with the same classification;
* :mod:`repro.difftest.service` shards the sweep across a fault-tolerant
  pool of worker subprocesses (timeouts, respawn, quarantine), journaled by
  :mod:`repro.difftest.journal` for ``--resume``, with deliberate failures
  supplied by :mod:`repro.difftest.faultinject`;
* :mod:`repro.difftest.merge` recombines per-host ``--host-shard`` journals
  into one verified record set, and :mod:`repro.difftest.output` renders
  the sweep artifacts identically for the single-host and merged paths.

``scripts/run_difftest.py`` is the command-line entry point;
``tests/test_difftest.py`` pins a 64-program sweep as a regression oracle
and ``tests/test_difftest_service.py`` pins the recovery paths.
"""

from repro.difftest.generator import (
    GENERATOR_VERSION,
    GeneratedProgram,
    ProgramGenerator,
    generate_corpus,
    generate_program,
)
from repro.difftest.faultinject import Fault, FaultPlan, parse_inject_spec
from repro.difftest.journal import JournalWriter, load_journal
from repro.difftest.merge import MergedSweep, merge_journals
from repro.difftest.oracle import (
    CATEGORIES,
    cell_record,
    classify_results,
    classify_sweep,
    corpus_document,
    corpus_document_from_records,
    feature_breakdown_from_records,
    format_matrix,
    summarize,
    summarize_records,
)
from repro.difftest.runner import DifferentialRunner, ProgramResult
from repro.difftest.reducer import reduce_program
from repro.difftest.service import SweepOutcome, SweepService

__all__ = [
    "GENERATOR_VERSION",
    "GeneratedProgram",
    "ProgramGenerator",
    "generate_corpus",
    "generate_program",
    "DifferentialRunner",
    "ProgramResult",
    "CATEGORIES",
    "cell_record",
    "classify_results",
    "classify_sweep",
    "corpus_document",
    "corpus_document_from_records",
    "feature_breakdown_from_records",
    "format_matrix",
    "summarize",
    "summarize_records",
    "reduce_program",
    "Fault",
    "FaultPlan",
    "parse_inject_spec",
    "JournalWriter",
    "load_journal",
    "MergedSweep",
    "merge_journals",
    "SweepOutcome",
    "SweepService",
]

"""Write-ahead journal for checkpointed differential sweeps.

One sweep = one journal file.  The first line is a *header* describing the
sweep's identity (corpus seed, program count, model list, budget, generator
version, analysis flag); every line after it is one completed program's
:func:`~repro.difftest.oracle.cell_record` — except *stats trailers*
(:data:`STATS_KIND` lines appended at session completion under ``--stats``),
which carry telemetry snapshots and are collected separately on load so
``--resume`` and the multi-host merge can aggregate per-shard stats without
ever confusing them with records.  The format is line-oriented
JSON so a torn final line — the only corruption an append-crash can produce
— is detectable and recoverable without touching the completed records
before it.

Durability contract
-------------------
* Records are appended through an ``O_APPEND`` handle and ``fsync``-batched
  (every :data:`JournalWriter.FSYNC_EVERY` appends, plus on close), so a
  crash loses at most the un-synced suffix, never the interior.
* :func:`load_journal` accepts exactly one torn line, and only at the tail:
  a line that fails to parse *or* a final line missing its ``\\n``.  The
  torn bytes are reported (``corrupt_tail``) so the supervisor can truncate
  and re-run that one program.  A corrupt *interior* line means the file was
  damaged by something other than an append crash and raises
  :class:`~repro.common.errors.JournalError` — silently skipping interior
  records would desynchronize the resume.
* Truncation (:func:`truncate_to`) and appending never share a handle: the
  writer always opens in append mode, so a recovered journal cannot grow a
  hole of NUL bytes between the truncate point and the next record.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.common.errors import JournalError

#: first-line discriminator: refuse to resume from a file that is not a
#: difftest journal (or is a journal from an incompatible future format).
JOURNAL_KIND = "repro-difftest-journal"
JOURNAL_VERSION = 1

#: discriminator for stats-trailer lines: at sweep completion (with
#: ``--stats``) the service appends one line carrying its session's
#: telemetry snapshot, so ``--resume`` and ``merge_journals`` can aggregate
#: per-shard stats later.  Trailers are *not* records: they carry no
#: program index, resume may leave them mid-file (each session appends its
#: own), and they never influence the sweep artifacts.
STATS_KIND = "repro-difftest-stats"


def _dump_line(payload: dict) -> bytes:
    # No sort_keys: cell records carry their model dicts in classification
    # order (the matrix derives column order from it), and that order must
    # survive the journal byte-for-byte.  Construction order is already
    # deterministic, so journal bytes are too.
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def make_header(*, seed: int, count: int, models, budget: int,
                generator_version: int, analyze: bool,
                host_shard: tuple[int, int] | None = None) -> dict:
    """The sweep-identity header written as the journal's first line.

    ``host_shard`` is ``(i, n)`` when this journal holds the deterministic
    interleaved slice ``index % n == i`` of the program stream (one host of
    a multi-host sweep; see ``scripts/merge_journals.py``), or None for a
    whole-sweep journal.  ``count`` is always the *full* sweep size — the
    shard never changes the sweep's identity, only which indices this
    journal may contain.
    """
    return {
        "kind": JOURNAL_KIND,
        "version": JOURNAL_VERSION,
        "seed": seed,
        "count": count,
        "models": list(models),
        "budget": budget,
        "generator_version": generator_version,
        "analyze": analyze,
        "host_shard": list(host_shard) if host_shard else None,
    }


class JournalWriter:
    """Append-only record writer with batched fsync."""

    #: appends between fsyncs: bounds data-loss on a crash to 16 programs
    #: (which resume simply re-runs) without paying a sync per record.
    FSYNC_EVERY = 16

    def __init__(self, path: str, handle) -> None:
        self.path = path
        self._handle = handle
        self._pending = 0
        #: optional telemetry hook ``(batched_appends, flush_seconds)``
        #: invoked after every fsync batch (repro.telemetry wiring; the
        #: journal itself has no telemetry dependency).
        self.on_sync = None

    @classmethod
    def create(cls, path: str, header: dict) -> "JournalWriter":
        """Start a fresh journal (truncates any previous file at ``path``)."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        # Truncate with a throwaway handle, then reopen O_APPEND: every byte
        # this writer ever emits goes through an append-mode handle.
        open(path, "wb").close()
        writer = cls(path, cls._open_append(path))
        writer._handle.write(_dump_line(header))
        writer._sync()
        return writer

    @classmethod
    def append_to(cls, path: str) -> "JournalWriter":
        """Continue an existing (already validated) journal."""
        return cls(path, cls._open_append(path))

    @staticmethod
    def _open_append(path: str):
        # Unbuffered on purpose: every append is one atomic O_APPEND write().
        # A userspace buffer would be fork-inherited by worker subprocesses,
        # whose interpreters flush it again on exit — splicing stale journal
        # bytes (duplicates, or a torn fragment mid-file) into the live
        # journal behind the supervisor's back.
        return open(path, "ab", buffering=0)

    def append(self, record: dict) -> None:
        self._handle.write(_dump_line(record))
        self._pending += 1
        if self._pending >= self.FSYNC_EVERY:
            self._sync()

    def append_stats(self, payload: dict) -> None:
        """Append a stats-trailer line (see :data:`STATS_KIND`)."""
        self.append({"kind": STATS_KIND, **payload})

    def write_raw(self, data: bytes) -> None:
        """Append raw bytes *without* a trailing newline or an fsync.

        Fault-injection only: simulates the torn tail a crash mid-append
        leaves behind, so the recovery path is testable on demand.
        """
        self._handle.write(data)
        self._handle.flush()

    def _sync(self) -> None:
        start = time.perf_counter() if self.on_sync is not None else 0.0
        self._handle.flush()
        os.fsync(self._handle.fileno())
        batched, self._pending = self._pending, 0
        if self.on_sync is not None:
            self.on_sync(batched, time.perf_counter() - start)

    def close(self) -> None:
        if self._handle.closed:
            return
        self._sync()
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovered from a journal file."""

    header: dict
    #: completed records keyed by program index (last write wins, though a
    #: well-formed journal never writes an index twice).
    records: dict[int, dict] = field(default_factory=dict)
    #: byte offset of the end of the last intact line; truncating here drops
    #: exactly the torn tail and nothing else.
    valid_bytes: int = 0
    #: the torn bytes past ``valid_bytes`` (empty when the file is intact).
    corrupt_tail: bytes = b""
    #: stats-trailer lines (:data:`STATS_KIND`) in file order — one per
    #: completed session that ran with ``--stats``; a resumed sweep can
    #: legitimately carry several.
    stats_trailers: list = field(default_factory=list)


def load_journal(path: str) -> JournalState:
    """Parse a journal, recovering from (at most) a torn final line."""
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    # split() leaves a trailing "" when the file ends in \n; anything else in
    # the final slot is a line whose append never completed.
    complete, tail = lines[:-1], lines[-1]
    if not complete:
        raise JournalError(f"{path} is empty or has no complete header line")
    parsed: list[dict] = []
    offset = 0
    for lineno, raw in enumerate(complete, start=1):
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("journal lines are JSON objects")
        except ValueError as exc:
            if lineno == len(complete):
                # Torn tail variant 1: the last newline-terminated line is
                # garbage (crash mid-append of a multi-block write).
                tail = raw + b"\n" + tail if tail else raw
                break
            raise JournalError(
                f"{path} line {lineno} is corrupt in the journal interior: {exc}"
            ) from None
        parsed.append(payload)
        offset += len(raw) + 1
    if not parsed:
        raise JournalError(f"{path} has no parsable header line")
    header = parsed[0]
    if header.get("kind") != JOURNAL_KIND:
        raise JournalError(f"{path} is not a difftest journal (kind={header.get('kind')!r})")
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path} has journal version {header.get('version')!r}; "
            f"this build reads version {JOURNAL_VERSION}"
        )
    state = JournalState(header=header, valid_bytes=offset,
                         corrupt_tail=data[offset:])
    for record in parsed[1:]:
        if record.get("kind") == STATS_KIND:
            state.stats_trailers.append(record)
            continue
        index = record.get("index")
        if not isinstance(index, int):
            raise JournalError(f"{path} carries a record without an integer index")
        state.records[index] = record
    return state


def truncate_to(path: str, valid_bytes: int) -> None:
    """Drop a recovered journal's torn tail in place."""
    with open(path, "rb+") as handle:
        handle.truncate(valid_bytes)

"""Batched cross-model differential executor.

One generated program is compiled **once per pointer layout** (the seven
registered models share two: 8-byte integer pointers and 32-byte
capabilities) through the ordinary ``parse -> irgen -> optimize`` pipeline,
then replayed under every model on the block-compiled engine
(:mod:`repro.interp.predecode`) with a per-run instruction budget.  Cycle
accounting is off by default — the oracle classifies on architectural
observables (traps, exit status, output, checkpoints, heap metrics), not on
simulated time — which roughly halves sweep wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.detector import AnalysisResult, analyze_module
from repro.common.errors import CompilationError
from repro.interp.machine import AbstractMachine, ExecutionResult
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.minic.ir import Module
from repro.minic.irgen import compile_source
from repro.minic.optimizer import optimize_module

#: default per-run instruction budget.  Generated programs terminate by
#: construction well under this; the budget is the backstop that keeps a
#: reducer-mangled or hand-written program from wedging a sweep.
DEFAULT_BUDGET = 200_000


@dataclass
class ProgramResult:
    """Outcomes of one program under every requested model."""

    source: str
    results: dict[str, ExecutionResult] = field(default_factory=dict)
    #: per-model compilation failure (should be impossible for generated
    #: programs; surfaced rather than swallowed so the oracle can report it)
    compile_errors: dict[str, str] = field(default_factory=dict)
    #: static idiom analysis of the 8-byte module (report integration)
    analysis: AnalysisResult | None = None


class DifferentialRunner:
    """Compile once per pointer layout, replay under every model."""

    def __init__(self, models: tuple[str, ...] | None = None, *,
                 budget: int = DEFAULT_BUDGET, analyze: bool = True,
                 collect_timing: bool = False) -> None:
        self.model_names = tuple(models or PAPER_MODEL_ORDER)
        unknown = [m for m in self.model_names if m not in PAPER_MODEL_ORDER]
        if unknown:
            raise ValueError(f"unknown models: {unknown}; known: {PAPER_MODEL_ORDER}")
        self.budget = budget
        self.analyze = analyze
        self.collect_timing = collect_timing
        # the (pointer_bytes, pointer_align) -> model-names grouping is
        # invariant for the runner's lifetime; computing it per run would
        # instantiate every model once per program just to read two attrs
        groups: dict[tuple[int, int], list[str]] = {}
        for name in self.model_names:
            model = get_model(name)
            groups.setdefault((model.pointer_bytes, model.pointer_align), []).append(name)
        self._layout_groups = groups

    # ------------------------------------------------------------------

    def _layouts(self) -> dict[tuple[int, int], list[str]]:
        """The requested models grouped by pointer layout (precomputed)."""
        return self._layout_groups

    def run_source(self, source: str, *, models: tuple[str, ...] | None = None,
                   source_name: str = "<difftest>") -> ProgramResult:
        """Compile ``source`` per layout and execute it under each model."""
        names = tuple(models or self.model_names)
        out = ProgramResult(source=source)
        modules: dict[tuple[int, int], Module | None] = {}
        for layout, layout_models in self._layouts().items():
            selected = [m for m in layout_models if m in names]
            if not selected:
                continue
            try:
                module = compile_source(source, pointer_bytes=layout[0],
                                        pointer_align=layout[1], source_name=source_name)
                optimize_module(module)
            except CompilationError as exc:
                modules[layout] = None
                for name in selected:
                    out.compile_errors[name] = f"{type(exc).__name__}: {exc}"
                continue
            modules[layout] = module
            if self.analyze and layout[0] == 8 and out.analysis is None:
                out.analysis = analyze_module(module)
            for name in selected:
                machine = AbstractMachine(
                    module, get_model(name),
                    max_instructions=self.budget,
                    collect_timing=self.collect_timing,
                )
                out.results[name] = machine.run()
        return out

    def run_program(self, program, *, models: tuple[str, ...] | None = None) -> ProgramResult:
        """Run a :class:`~repro.difftest.generator.GeneratedProgram`."""
        return self.run_source(program.source, models=models, source_name=program.name)

    def sweep(self, programs, *, progress=None) -> list[ProgramResult]:
        """Run a whole corpus; ``progress`` (if given) is called per program."""
        results = []
        for i, program in enumerate(programs):
            results.append(self.run_program(program))
            if progress is not None:
                progress(i, program)
        return results

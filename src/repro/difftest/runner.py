"""Batched cross-model differential executor.

One generated program is **parsed once** (tokens and AST are pointer-layout
independent), **lowered once per pointer layout** (the seven registered
models share two: 8-byte integer pointers and 32-byte capabilities), then
replayed under every model with a per-run instruction budget.  The machines
run with ``shared_blocks=True``, so every model of a layout binds the same
process-cached predecode artifact (:mod:`repro.interp.artifact`) instead of
re-predecoding per machine — the sweep is compile-bound, not
execution-bound.  Cycle accounting is off by default (the oracle classifies
on architectural observables, not simulated time), trap tracebacks are
dropped so results do not retain machine graphs, and :meth:`sweep` batches
cyclic-garbage collection.  See ``docs/difftest.md`` and
``docs/pipeline.md``.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass, field

from repro.analysis.detector import AnalysisResult, analyze_module
from repro.common.errors import CompilationError
from repro.interp import diskcache
from repro.interp.lockstep import run_lockstep
from repro.interp.machine import AbstractMachine, ExecutionResult, scrub_trap
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.minic.irgen import compile_unit
from repro.minic.optimizer import optimize_module
from repro.minic.parser import parse
from repro.telemetry.trace import NULL_TRACER, timed_span

#: default per-run instruction budget.  Generated programs terminate by
#: construction well under this; the budget is the backstop that keeps a
#: reducer-mangled or hand-written program from wedging a sweep.
DEFAULT_BUDGET = 200_000


@dataclass
class ProgramResult:
    """Outcomes of one program under every requested model."""

    source: str
    results: dict[str, ExecutionResult] = field(default_factory=dict)
    #: per-model compilation failure (should be impossible for generated
    #: programs; surfaced rather than swallowed so the oracle can report it)
    compile_errors: dict[str, str] = field(default_factory=dict)
    #: static idiom analysis of the 8-byte module (report integration)
    analysis: AnalysisResult | None = None


class DifferentialRunner:
    """Compile once per pointer layout, replay under every model."""

    def __init__(self, models: tuple[str, ...] | None = None, *,
                 budget: int = DEFAULT_BUDGET, analyze: bool = True,
                 collect_timing: bool = False, machine_hook=None,
                 static_facts: bool = False, tracer=None,
                 stage_sink=None, lockstep: str | None = None) -> None:
        self.model_names = tuple(models or PAPER_MODEL_ORDER)
        #: batched execution (repro.interp.lockstep): None runs the models of
        #: a layout one machine at a time (the reference path); "pairs" runs
        #: them as 2-lane groups (the pdp11+checked hot pair first, any odd
        #: model serial); "all" runs every model of a layout as one group.
        #: Observationally identical either way — per-lane results are pinned
        #: bit-identical by tests/test_lockstep.py — so, like static_facts,
        #: the engine choice is NOT part of a sweep journal's identity.
        if lockstep not in (None, "pairs", "all"):
            raise ValueError(f"lockstep must be None, 'pairs' or 'all', not {lockstep!r}")
        self.lockstep = lockstep
        #: annotate each compiled module with proven static facts
        #: (repro.staticcheck.facts) so the interpreter can unbox proven
        #: scalar call results and skip provably dead shadow bookkeeping.
        #: Observationally identical to running without facts — only the
        #: wall-clock changes — which the facts export tests pin.
        self.static_facts = static_facts
        #: optional callable ``(machine, model_name)`` invoked on every
        #: freshly constructed machine before it runs — the fault-injection
        #: harness uses it to arm engine faults (difftest/faultinject.py).
        self.machine_hook = machine_hook
        #: telemetry seams (repro.telemetry): ``tracer`` collects per-stage
        #: Perfetto spans, ``stage_sink`` ``(name, seconds)`` samples feed
        #: the stage-latency histograms.  Both default to off, where
        #: :func:`~repro.telemetry.trace.timed_span` collapses to a shared
        #: no-op context manager — sweep observables never depend on either.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stage_sink = stage_sink
        unknown = [m for m in self.model_names if m not in PAPER_MODEL_ORDER]
        if unknown:
            raise ValueError(f"unknown models: {unknown}; known: {PAPER_MODEL_ORDER}")
        self.budget = budget
        self.analyze = analyze
        self.collect_timing = collect_timing
        # the (pointer_bytes, pointer_align) -> model-names grouping is
        # invariant for the runner's lifetime; computing it per run would
        # instantiate every model once per program just to read two attrs
        groups: dict[tuple[int, int], list[str]] = {}
        for name in self.model_names:
            model = get_model(name)
            groups.setdefault((model.pointer_bytes, model.pointer_align), []).append(name)
        self._layout_groups = groups

    # ------------------------------------------------------------------

    def _layouts(self) -> dict[tuple[int, int], list[str]]:
        """The requested models grouped by pointer layout (precomputed)."""
        return self._layout_groups

    def run_source(self, source: str, *, models: tuple[str, ...] | None = None,
                   source_name: str = "<difftest>") -> ProgramResult:
        """Compile ``source`` per layout and execute it under each model."""
        names = tuple(models or self.model_names)
        tracer, sink = self.tracer, self.stage_sink
        out = ProgramResult(source=source)
        # Lexing and parsing are layout-independent: parse once, lower the
        # same AST per pointer layout (a parse failure fails every layout).
        try:
            with timed_span(tracer, sink, "stage.parse"):
                unit, _ = parse(source)
        except CompilationError as exc:
            for layout, layout_models in self._layouts().items():
                for name in layout_models:
                    if name in names:
                        out.compile_errors[name] = f"{type(exc).__name__}: {exc}"
            return out
        line_count = source.count("\n") + 1
        for layout, layout_models in self._layouts().items():
            selected = [m for m in layout_models if m in names]
            if not selected:
                continue
            try:
                with timed_span(tracer, sink, "stage.lower",
                                pointer_bytes=layout[0]):
                    module = compile_unit(unit, pointer_bytes=layout[0],
                                          pointer_align=layout[1], source_name=source_name,
                                          source_line_count=line_count)
                    optimize_module(module)
            except CompilationError as exc:
                for name in selected:
                    out.compile_errors[name] = f"{type(exc).__name__}: {exc}"
                continue
            if self.static_facts:
                # Imported lazily: repro.staticcheck's package init pulls in
                # the predictor, which imports this module.
                from repro.staticcheck.facts import annotate_module
                annotate_module(module)
            if self.analyze and layout[0] == 8 and out.analysis is None:
                with timed_span(tracer, sink, "stage.analyze"):
                    out.analysis = analyze_module(module)
            if self.lockstep is not None and len(selected) > 1:
                self._run_lockstep(module, selected, out, tracer, sink)
            else:
                for name in selected:
                    # shared_blocks: every model of this layout binds the
                    # same cached predecode artifact (slot analysis, fusion,
                    # block code objects) instead of re-predecoding per
                    # machine — the sweep is compile-bound, not
                    # execution-bound.
                    with timed_span(tracer, sink, "stage.predecode", model=name):
                        machine = AbstractMachine(
                            module, get_model(name),
                            max_instructions=self.budget,
                            collect_timing=self.collect_timing,
                            shared_blocks=True,
                        )
                        if self.machine_hook is not None:
                            self.machine_hook(machine, name)
                    # Span and histogram are per model (stage.execute.pdp11
                    # ...): the oracle's hot comparison is pdp11 + one
                    # checked model, so per-model latency is what told the
                    # lockstep engine which pair to vectorize first.
                    with timed_span(tracer, sink, f"stage.execute.{name}",
                                    model=name):
                        result = machine.run()
                    if result.trap is not None:
                        # The oracle classifies on the trap's type, message
                        # and structured cause; the traceback (and the
                        # tracebacks chained behind ``from None`` raises)
                        # would retain the whole machine graph for as long
                        # as the sweep keeps its results.
                        scrub_trap(result.trap)
                    out.results[name] = result
        if diskcache.enabled():
            # Persist this program's artifacts now that every model has
            # bound them (all policy combinations are memoized); a killed
            # worker loses at most the in-flight program's entries.
            with timed_span(tracer, sink, "stage.cachestore"):
                diskcache.flush()
        return out

    def _run_lockstep(self, module, selected: list[str], out: ProgramResult,
                      tracer, sink) -> None:
        """Execute one layout's models as lockstep lane groups.

        Machines are built up front (same per-model ``stage.predecode`` spans
        and hook as the serial path) with ``lazy_binding=True`` — per-pc
        handler closures are built on first execution, so N lanes pay binding
        roughly once per reached pc instead of N times.  ``pairs`` groups
        adjacent models two at a time, which puts the paper's hot comparison
        (pdp11 + the first checked model) in the first group; an odd leftover
        lane runs serially.  ``all`` batches the whole layout.  Results land
        in ``out.results`` in the same order the serial path would insert
        them, already scrubbed, so corpus artifacts stay byte-identical.
        """
        machines = []
        for name in selected:
            with timed_span(tracer, sink, "stage.predecode", model=name):
                machine = AbstractMachine(
                    module, get_model(name),
                    max_instructions=self.budget,
                    collect_timing=self.collect_timing,
                    shared_blocks=True,
                    lazy_binding=True,
                )
                if self.machine_hook is not None:
                    self.machine_hook(machine, name)
            machines.append(machine)
        if self.lockstep == "all":
            groups = [list(zip(selected, machines))]
        else:
            groups = [list(zip(selected, machines))[i:i + 2]
                      for i in range(0, len(selected), 2)]
        timed = sink is not None or tracer is not NULL_TRACER
        for group in groups:
            if len(group) == 1:
                name, machine = group[0]
                with timed_span(tracer, sink, f"stage.execute.{name}",
                                model=name):
                    result = machine.run()
                if result.trap is not None:
                    scrub_trap(result.trap)
                out.results[name] = result
                continue
            group_names = [name for name, _machine in group]
            with tracer.span("stage.execute.lockstep",
                             models=",".join(group_names)):
                outcomes = run_lockstep([machine for _name, machine in group],
                                        collect_seconds=timed)
            # The per-model stage.execute series survives batching: each
            # lane's segment wall time is accumulated by the engine and fed
            # to the same histogram names the serial path uses.
            for (name, _machine), outcome in zip(group, outcomes):
                if sink is not None:
                    sink(f"stage.execute.{name}", outcome.seconds)
                out.results[name] = outcome.result

    def run_program(self, program, *, models: tuple[str, ...] | None = None) -> ProgramResult:
        """Run a :class:`~repro.difftest.generator.GeneratedProgram`."""
        return self.run_source(program.source, models=models, source_name=program.name)

    #: programs between young-generation cycle collections during a sweep.
    GC_BATCH = 4

    def sweep(self, programs, *, progress=None) -> list[ProgramResult]:
        """Run a whole corpus; ``progress`` (if given) is called per program.

        Machine graphs are cyclic (handlers close over their machine, the
        machine owns the compiled code that owns the handlers), so a sweep
        discards seven cyclic object graphs per program.  Under the default
        collector that shows up as constant full collections — more than a
        third of sweep wall-clock.  The loop therefore disables automatic
        collection and reclaims the short-lived graphs with a cheap
        young-generation pass every :data:`GC_BATCH` programs (one full
        collection at the end), which bounds peak memory without scanning
        the long-lived heap per program.
        """
        results = []
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            for i, program in enumerate(programs):
                results.append(self.run_program(program))
                if was_enabled and (i + 1) % self.GC_BATCH == 0:
                    gc.collect(1)
                if progress is not None:
                    progress(i, program)
        finally:
            if was_enabled:
                gc.enable()
                gc.collect()
        return results

"""Divergence classification for differential sweeps.

Every (program, model) cell is classified **relative to the PDP-11
baseline** — the paper's "what the C programmer expected" interpretation —
into a *total* taxonomy: there is no "unexplained" bucket, every outcome
maps to exactly one category.

Semantic channel vs output channel
----------------------------------
A program's *semantic* observables are its trap status, exit code and
``mini_checkpoint`` stream; the generator guarantees these are independent
of pointer layout.  Everything the program prints is the *output* channel,
which legitimately depends on the ABI (``sizeof(int *)`` is 8 or 32).  The
split is what separates the three divergence kinds the paper cares about:

* ``trap:<cause>``    — the model rejected an idiom with a protection trap
  (fail closed); ``cause`` is the structured trap category carried by
  :class:`repro.common.errors.MemorySafetyError`;
* ``corrupt``         — the model ran to completion but the semantic channel
  differs (the idiom silently misbehaves: fail open — the worst cell);
* ``benign``          — only the output channel differs (an ABI difference,
  not a safety difference).

Identical observables are ``agree``.  The long tail (baseline traps, budget
exhaustion, compile failures) gets explicit categories rather than being
folded into the interesting ones.  ``docs/difftest.md`` documents the full
taxonomy and how to read the rendered matrix and corpus JSON;
``docs/models.md`` documents the trap causes each model can produce.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.idioms import TABLE_IDIOMS
from repro.analysis.report import format_table5
from repro.common.errors import (
    InterpreterError,
    MemorySafetyError,
    UndefinedBehaviorError,
)
from repro.difftest.runner import ProgramResult
from repro.interp.machine import ExecutionResult

BASELINE = "pdp11"

#: canonical category order for reports; `classify_results` only ever
#: returns strings from this list (plus the dynamic `trap:*` refinements
#: enumerated here).
CATEGORIES = (
    "agree",
    "benign",
    "corrupt",
    "trap:bounds",
    "trap:tag",
    "trap:permission",
    "trap:alignment",
    "trap:uaf",
    "trap:null",
    "trap:segfault",
    "trap:badfree",
    "trap:ptrdiff",
    "trap:safety",
    "trap:ub",
    "agree-trap",
    "baseline-trap",
    "escape",
    "budget",
    "error:interp",
    "error:compile",
    # Service-level quarantine cells (difftest/service.py): the worker
    # executing the program died repeatedly (`error:engine`) or exceeded the
    # per-program wall-clock timeout (`error:timeout`).  The taxonomy stays
    # total even when the infrastructure, not the program, misbehaves.
    "error:engine",
    "error:timeout",
)


def trap_cause(trap: Exception) -> str:
    """The structured trap category of an interpreter exception."""
    if isinstance(trap, MemorySafetyError):
        return trap.cause
    if isinstance(trap, UndefinedBehaviorError):
        return "ub"
    if isinstance(trap, InterpreterError):
        return "budget" if "instruction budget" in str(trap) else "interp"
    return "interp"


def _semantic_signature(result: ExecutionResult) -> tuple:
    return (result.exit_code, tuple(result.checkpoints))


def _cell(result: ExecutionResult, base: ExecutionResult | None, *,
          is_baseline: bool) -> str:
    """Classify one (program, model) outcome.  Every path returns a category
    from :data:`CATEGORIES`, on every combination of (trapped?, baseline
    trapped?, baseline present?) — the total-taxonomy contract lives here."""
    if result.trapped:
        if is_baseline:
            return "baseline-trap"
        cause = trap_cause(result.trap)
        if cause == "budget":
            return "budget"
        if cause == "interp":
            return "error:interp"
        if base is not None and base.trapped and trap_cause(base.trap) == cause:
            return "agree-trap"
        return f"trap:{cause}"
    if is_baseline or base is None:
        return "agree"
    if base.trapped:
        return "escape"
    if _semantic_signature(result) != _semantic_signature(base):
        return "corrupt"
    if result.output != base.output:
        return "benign"
    return "agree"


def classify_results(program_result: ProgramResult, *, baseline: str = BASELINE) -> dict[str, str]:
    """Classify every model's outcome for one program.  Total by design."""
    base = program_result.results.get(baseline)
    out = {name: "error:compile" for name in program_result.compile_errors}
    for name, result in program_result.results.items():
        out[name] = _cell(result, base, is_baseline=name == baseline)
    return out


def is_divergent(classification: dict[str, str]) -> bool:
    return any(category not in ("agree", "agree-trap") for category in classification.values())


def classify_sweep(program_results: list[ProgramResult], *,
                   baseline: str = BASELINE) -> list[dict[str, str]]:
    return [classify_results(r, baseline=baseline) for r in program_results]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def summarize(classifications: list[dict[str, str]]) -> dict[str, dict[str, int]]:
    """``{model: {category: count}}`` over a sweep."""
    totals: dict[str, Counter] = {}
    for classification in classifications:
        for model, category in classification.items():
            totals.setdefault(model, Counter())[category] += 1
    return {model: dict(counter) for model, counter in totals.items()}


def feature_breakdown(programs, classifications: list[dict[str, str]]) -> dict:
    """``{feature: {model: {category: count}}}`` over a sweep."""
    table: dict[str, dict[str, Counter]] = {}
    for program, classification in zip(programs, classifications):
        for feature in program.features:
            per_model = table.setdefault(feature, {})
            for model, category in classification.items():
                per_model.setdefault(model, Counter())[category] += 1
    return {feature: {model: dict(counter) for model, counter in per_model.items()}
            for feature, per_model in sorted(table.items())}


def format_matrix(summary: dict[str, dict[str, int]],
                  features: dict, *, meta: dict) -> str:
    """Render the Table-5 matrix (delegates to the analysis report layer)."""
    return format_table5(summary, features, meta=meta, category_order=CATEGORIES)


# ---------------------------------------------------------------------------
# Per-program cell records (the service's merge currency)
# ---------------------------------------------------------------------------
#
# The sharded service (difftest/service.py) cannot merge ProgramResult
# objects — they cross a process boundary and a journal, and keeping 100k of
# them alive would defeat the sweep's memory discipline.  Instead every
# completed program is condensed into one JSON-safe *cell record* holding
# exactly the observables the two sweep artifacts need; both artifacts are
# then rebuilt from records alone.  The legacy in-process entry point
# (:func:`corpus_document`) delegates to the same record path, so serial and
# sharded sweeps are bit-identical by construction, not by coincidence.


def cell_record(program, program_result: ProgramResult,
                classification: dict[str, str], *,
                static_prediction: dict[str, str] | None = None) -> dict:
    """Condense one program's outcome into a JSON-safe record.

    The record survives ``json.dumps``/``loads`` round-trips unchanged
    (plain ints, strings, lists, dicts), which is what lets the write-ahead
    journal checkpoint a sweep without losing artifact fidelity.

    ``static_prediction`` (model -> category from
    ``repro.staticcheck.PREDICTION_CATEGORIES``) is attached when the sweep
    ran with static cross-validation; records without it serialize exactly
    as before, so pre-existing journals and artifacts are unaffected.
    """
    record = {
        "index": program.index,
        "seed": program.seed,
        "features": list(program.features),
        # Classification keeps classify_results' insertion order: the matrix
        # derives its model-column order from first encounter, and JSON
        # object order survives the journal round-trip.
        "classification": dict(classification),
        "metrics": {model: [result.allocations, result.allocated_bytes]
                    for model, result in program_result.results.items()},
    }
    if program_result.analysis is not None:
        record["idioms"] = {idiom.name: program_result.analysis.count(idiom)
                            for idiom in TABLE_IDIOMS
                            if program_result.analysis.count(idiom)}
    if static_prediction is not None:
        record["static_prediction"] = dict(static_prediction)
    return record


def summarize_records(records) -> dict[str, dict[str, int]]:
    """``{model: {category: count}}`` over cell records."""
    totals: dict[str, Counter] = {}
    for record in records:
        for model, category in record["classification"].items():
            totals.setdefault(model, Counter())[category] += 1
    return {model: dict(counter) for model, counter in totals.items()}


def feature_breakdown_from_records(records) -> dict:
    """``{feature: {model: {category: count}}}`` over cell records."""
    table: dict[str, dict[str, Counter]] = {}
    for record in records:
        for feature in record["features"]:
            per_model = table.setdefault(feature, {})
            for model, category in record["classification"].items():
                per_model.setdefault(model, Counter())[category] += 1
    return {feature: {model: dict(counter) for model, counter in per_model.items()}
            for feature, per_model in sorted(table.items())}


def corpus_document_from_records(records, *, meta: dict) -> dict:
    """The JSON corpus rebuilt from cell records.

    Deterministic by construction — no timestamps, stable ordering — so two
    identical sweeps serialize byte-identically regardless of worker count,
    retries or resume boundaries (callers pass records ordered by index).
    """
    divergent = []
    for record in records:
        classification = record["classification"]
        if not is_divergent(classification):
            continue
        entry = {
            "index": record["index"],
            "seed": f"{record['seed']:#x}",
            "features": list(record["features"]),
            "classification": {m: classification[m] for m in sorted(classification)},
            "kinds": sorted({category for category in classification.values()
                             if category not in ("agree", "agree-trap")}),
        }
        metrics = record["metrics"]
        base = metrics.get(BASELINE)
        if base is not None:
            entry["heap_metric_deltas"] = {
                model: {
                    "allocations": counts[0] - base[0],
                    "allocated_bytes": counts[1] - base[1],
                }
                for model, counts in sorted(metrics.items())
                if model != BASELINE and counts != base
            }
        idioms = record.get("idioms")
        if idioms:
            entry["idioms"] = dict(idioms)
        static_prediction = record.get("static_prediction")
        if static_prediction is not None:
            entry["static_prediction"] = {m: static_prediction[m]
                                          for m in sorted(static_prediction)}
        divergent.append(entry)
    return {
        "meta": dict(sorted(meta.items())),
        "summary": {model: dict(sorted(counts.items()))
                    for model, counts in sorted(summarize_records(records).items())},
        "features": feature_breakdown_from_records(records),
        "divergent": divergent,
    }


def corpus_document(programs, program_results: list[ProgramResult],
                    classifications: list[dict[str, str]], *, meta: dict) -> dict:
    """The JSON corpus: sweep metadata plus every interesting seed.

    Thin wrapper over the record path so in-process and sharded sweeps share
    one artifact builder (see the cell-record commentary above).
    """
    records = [cell_record(program, program_result, classification)
               for program, program_result, classification
               in zip(programs, program_results, classifications)]
    return corpus_document_from_records(records, meta=meta)

"""Fault-tolerant sharded sweep supervisor.

The differential sweep becomes a *service*: a supervisor process shards the
seeded program stream across a pool of isolated worker subprocesses, and no
single program can take the sweep down.

Fault model and responses
-------------------------
* **Worker death** (segfault-equivalent, OOM kill, unpicklable blow-up):
  the worker is respawned with exponential backoff and its in-flight
  program is retried.
* **Hang**: a per-program wall-clock deadline; on expiry the worker is
  killed and treated as dead.
* **Poison programs**: a program that keeps failing after ``retries``
  attempts is quarantined into an ``error:engine`` / ``error:timeout``
  classification for every requested model — the Table-5 taxonomy stays
  total instead of the run aborting.
* **Interpreter-internal block errors**: absorbed inside the machine by the
  block-engine -> single-step fallback (``AbstractMachine._execute``) and
  surfaced here only as a statistic.
* **Torn journal tails**: recovered by ``journal.load_journal`` before
  resuming (and, under ``--inject journal``, mid-run).

Determinism contract
--------------------
Workers never ship programs or results across the process boundary — a task
is ``(index, attempt)``, the worker regenerates the program from
``(corpus_seed, index)`` and returns the JSON-safe
:func:`~repro.difftest.oracle.cell_record`.  Records are merged ordered by
index (the generator makes per-program seeds a pure function of index), so
the rebuilt artifacts are bit-identical to a serial in-process sweep
regardless of worker count, retries, injected faults or resume boundaries.
The write-ahead journal holds exactly these records, one line per program,
which is why ``--resume`` composes with everything else.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import re
import sys
import time
from collections import deque
from dataclasses import dataclass, field

from repro.common.errors import ServiceError
from repro.interp import diskcache
from repro.difftest.faultinject import FaultPlan
from repro.difftest.generator import GENERATOR_VERSION, generate_program
from repro.difftest.journal import (
    JournalWriter,
    load_journal,
    make_header,
    truncate_to,
)
from repro.difftest.oracle import cell_record, classify_results
from repro.difftest.runner import DEFAULT_BUDGET, DifferentialRunner
from repro.interp.models import PAPER_MODEL_ORDER
from repro.telemetry import metrics
from repro.telemetry.status import STATUS_VERSION, StatusWriter, ThroughputEMA
from repro.telemetry.trace import NULL_TRACER, TraceBuffer, TraceWriter, timed_span

#: sweep-identity header fields that must match for ``--resume`` (the rest of
#: the header — kind/version — is checked by the journal layer itself).
#: ``host_shard`` is part of the identity: resuming shard 1/3's journal as
#: shard 2/3 (or as a whole-sweep run) would silently skip or duplicate
#: indices.
_IDENTITY_FIELDS = ("seed", "count", "models", "budget", "generator_version",
                    "analyze", "host_shard")


@dataclass
class SweepOutcome:
    """Everything a sweep produced: records in index order, plus run stats."""

    records: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    #: telemetry snapshot (:func:`repro.telemetry.metrics.snapshot` plus the
    #: service stats folded in as ``service.*`` counters), or None when the
    #: sweep ran with telemetry off.
    telemetry: dict | None = None
    #: structured recovery incidents (torn-tail recoveries, injected or
    #: real) — also surfaced in the status file and the stats trailer.
    incidents: list = field(default_factory=list)


def _cache_counters() -> dict[str, int]:
    """Current process's cache + lockstep counters, namespaced for aggregation.

    Workers snapshot this before/after every program and ship the *delta*
    with the result, so the supervisor's totals aggregate across the fork
    boundary instead of silently reporting the parent's zeros.  The lockstep
    engine's lane/round/divergence counters ride along: they live in the
    worker's metrics registry, which never crosses the fork either.  (The
    lane-occupancy *histogram* stays worker-local; its mean survives as
    ``lockstep.occupied_lane_rounds / lockstep.rounds``.)
    """
    from repro.interp.artifact import ARTIFACTS
    from repro.telemetry import metrics
    counters = {f"cache.artifact.{key}": value
                for key, value in ARTIFACTS.stats().items()
                if key != "entries"}
    tier = diskcache.tier()
    if tier is not None:
        counters.update({f"cache.disk.{key}": value
                         for key, value in tier.stats.items()})
    counters.update(metrics.registry().counter_values("lockstep."))
    return counters


def _worker_main(worker_id: int, corpus_seed: int, model_names, budget: int,
                 analyze: bool, static_facts: bool, lockstep, plan, cache_dir,
                 telemetry_on: bool, trace_on: bool, task_q, result_q) -> None:
    """Worker loop: regenerate, run, classify, condense — one task at a time.

    Runs in a subprocess.  Tasks are ``("run", index, attempt)`` tuples;
    ``("stop",)`` ends the loop.  Every completed program answers with
    ``("ok", index, record, meta)`` — ``meta`` carries the engine-fallback
    count and, when telemetry is on, the program's stage-latency samples,
    trace events and cache-counter deltas (the result queue is the only
    channel worker telemetry can survive on: registries don't cross the
    fork).  An in-worker failure answers ``("error", index, detail)`` and
    keeps the worker alive.
    """
    if cache_dir:
        # Persistent artifact tier, shared with sibling workers and future
        # runs through per-key lock files (repro.interp.diskcache).  Under
        # the fork start method the parent may already have configured it;
        # reconfiguring resets only this process's pending list.
        diskcache.configure(cache_dir)
    # Worker track ``worker_id + 1`` (the supervisor owns pid 0); the slot
    # id is the stable identity across respawns, the OS pid is an arg.
    tracer = (TraceBuffer(pid=worker_id + 1, tid=0) if trace_on
              else NULL_TRACER)
    stage_samples: list = []
    sink = (lambda name, seconds: stage_samples.append((name, seconds))) \
        if telemetry_on else None
    runner = DifferentialRunner(models=tuple(model_names), budget=budget,
                                analyze=analyze, static_facts=static_facts,
                                lockstep=lockstep, tracer=tracer,
                                stage_sink=sink)
    # Same GC discipline as DifferentialRunner.sweep: the per-program machine
    # graphs are cyclic; reclaim them with cheap young-generation passes.
    gc.disable()
    done = 0
    while True:
        task = task_q.get()
        if task[0] == "stop":
            return
        _, index, attempt = task
        try:
            if plan is not None:
                plan.fire_worker_fault(index, attempt)
                runner.machine_hook = plan.machine_hook(index, attempt)
                cache_fault = plan.cache_fault(index, attempt)
                if cache_fault is not None and diskcache.enabled():
                    diskcache.tier().arm_fault(cache_fault)
            caches_before = _cache_counters() if telemetry_on else None
            with tracer.span("program", index=index, attempt=attempt,
                             os_pid=os.getpid()):
                with timed_span(tracer, sink, "stage.generate"):
                    program = generate_program(corpus_seed, index)
                program_result = runner.run_program(program)
                with timed_span(tracer, sink, "stage.classify"):
                    classification = classify_results(program_result)
                    record = cell_record(program, program_result,
                                         classification)
            meta = {"fallbacks": sum(r.engine_fallbacks
                                     for r in program_result.results.values())}
            if telemetry_on:
                after = _cache_counters()
                meta["caches"] = {key: after[key] - caches_before.get(key, 0)
                                  for key in after
                                  if after[key] != caches_before.get(key, 0)}
                meta["stages"], stage_samples[:] = list(stage_samples), []
                meta["events"] = tracer.drain()
            result_q.put(("ok", index, record, meta))
        except Exception as exc:
            stage_samples.clear()
            tracer.drain()
            result_q.put(("error", index, f"{type(exc).__name__}: {exc}"))
        done += 1
        if done % 4 == 0:
            gc.collect(1)


class SweepService:
    """Supervisor for one sharded, journaled, fault-tolerant sweep."""

    #: supervisor poll interval while all workers are busy.
    POLL_SECONDS = 0.01

    def __init__(self, *, seed: int, count: int, models=None,
                 budget: int = DEFAULT_BUDGET, analyze: bool = True,
                 jobs: int = 1, timeout: float = 30.0, retries: int = 2,
                 inject: FaultPlan | None = None, journal_path: str,
                 host_shard: tuple[int, int] | None = None,
                 artifact_cache: str | None = None,
                 static_facts: bool = False,
                 lockstep: str | None = None,
                 progress=None,
                 trace_path: str | None = None,
                 collect_stats: bool = False,
                 status_path: str | None = None,
                 status_interval: float = 2.0) -> None:
        self.seed = seed
        self.count = count
        self.model_names = tuple(models or PAPER_MODEL_ORDER)
        unknown = [m for m in self.model_names if m not in PAPER_MODEL_ORDER]
        if unknown:
            raise ServiceError(f"unknown models: {unknown}; known: {PAPER_MODEL_ORDER}")
        if count < 0:
            raise ServiceError(f"--count must be >= 0, got {count}")
        if jobs < 1:
            raise ServiceError(f"--jobs must be >= 1, got {jobs}")
        if timeout <= 0:
            raise ServiceError(f"--timeout must be positive, got {timeout}")
        if retries < 0:
            raise ServiceError(f"--retries must be >= 0, got {retries}")
        if host_shard is not None:
            shard, nshards = host_shard
            if nshards < 1 or not 0 <= shard < nshards:
                raise ServiceError(
                    f"--host-shard must be i/N with 0 <= i < N, got "
                    f"{shard}/{nshards}")
        self.budget = budget
        self.analyze = analyze
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.inject = inject if inject else None
        self.journal_path = journal_path
        self.host_shard = tuple(host_shard) if host_shard else None
        self.artifact_cache = artifact_cache
        #: run every model with static-facts annotations (pinned
        #: observationally identical to facts-off, so NOT part of the
        #: journal's sweep identity — a facts-on resume of a facts-off
        #: journal replays the same cells).
        self.static_facts = static_facts
        #: batched lockstep execution per pointer layout (None, "pairs" or
        #: "all"; repro.interp.lockstep).  Like static_facts, pinned
        #: observationally identical to the serial engine, so NOT part of
        #: the journal's sweep identity — a lockstep resume of a serial
        #: journal (or vice versa) replays the same cells.
        if lockstep not in (None, "pairs", "all"):
            raise ServiceError(
                f"--lockstep must be 'pairs' or 'all', got {lockstep!r}")
        self.lockstep = lockstep
        self.progress = progress
        if status_interval < 0:
            raise ServiceError(
                f"--status-interval must be >= 0, got {status_interval}")
        #: telemetry surfaces (repro.telemetry): a Perfetto trace file, the
        #: end-of-sweep stats snapshot (+ journal trailer), and the live
        #: status file beside the journal.  None of them touch record
        #: content — artifacts are bit-identical on vs off by construction.
        self.trace_path = trace_path
        self.collect_stats = bool(collect_stats)
        self.status_interval = status_interval
        self.status_path = (status_path if status_path is not None
                            else (journal_path + ".status.json"
                                  if status_interval > 0 else None))
        self.telemetry_on = bool(trace_path or self.collect_stats
                                 or self.status_path)
        #: structured recovery incidents accumulated during run().
        self.incidents: list = []
        self._stats_folded = False

    # ------------------------------------------------------------------

    def shard_indices(self) -> list[int]:
        """The program indices this host runs: the full stream, or the
        deterministic interleaved slice ``index % n == i`` of it."""
        if self.host_shard is None:
            return list(range(self.count))
        shard, nshards = self.host_shard
        return list(range(shard, self.count, nshards))

    def _header(self) -> dict:
        return make_header(seed=self.seed, count=self.count,
                           models=self.model_names, budget=self.budget,
                           generator_version=GENERATOR_VERSION,
                           analyze=self.analyze, host_shard=self.host_shard)

    def _check_resume_header(self, found: dict, expected: dict) -> None:
        mismatched = [f"{name}: journal has {found.get(name)!r}, "
                      f"this sweep wants {expected[name]!r}"
                      for name in _IDENTITY_FIELDS
                      if found.get(name) != expected[name]]
        if mismatched:
            raise ServiceError(
                f"--resume journal {self.journal_path} belongs to a different "
                "sweep (" + "; ".join(mismatched) + "); re-run without "
                "--resume to start over"
            )

    def _poison_record(self, index: int, cause: str) -> dict:
        """The quarantine record: every requested cell becomes ``error:<cause>``."""
        program = generate_program(self.seed, index)
        category = f"error:{cause}"
        return {
            "index": index,
            "seed": program.seed,
            "features": list(program.features),
            "classification": {m: category for m in self.model_names},
            "metrics": {},
        }

    def _spawn_worker(self, ctx, worker_id: int, respawns: int = 0) -> dict:
        # Per-worker queues on BOTH directions: a SIGKILL mid-``put`` can
        # leave a torn pickle in a pipe, and torn pipes are abandoned with
        # the worker instead of poisoning a shared result stream.
        task_q = ctx.SimpleQueue()
        result_q = ctx.SimpleQueue()
        proc = ctx.Process(target=_worker_main,
                           args=(worker_id, self.seed, self.model_names,
                                 self.budget, self.analyze, self.static_facts,
                                 self.lockstep, self.inject, self.artifact_cache,
                                 self.telemetry_on, bool(self.trace_path),
                                 task_q, result_q),
                           daemon=True, name=f"difftest-worker-{worker_id}")
        proc.start()
        return {"proc": proc, "task_q": task_q, "result_q": result_q,
                "current": None, "deadline": 0.0, "started": 0.0,
                "respawns": respawns}

    @staticmethod
    def _kill_worker(worker: dict) -> None:
        proc = worker["proc"]
        if proc.is_alive():
            proc.terminate()
            proc.join(0.5)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)

    # ------------------------------------------------------------------

    def run(self, *, resume: bool = False) -> SweepOutcome:
        """Execute (or finish) the sweep; records come back in index order."""
        header = self._header()
        shard = self.shard_indices()
        shard_set = set(shard)
        target = len(shard)
        stats = {"completed": 0, "resumed": 0, "retries": 0, "quarantined": 0,
                 "respawns": 0, "timeouts": 0, "worker_errors": 0,
                 "engine_fallbacks": 0, "journal_recoveries": 0}
        # Telemetry: a fresh registry per run (before any worker forks), the
        # supervisor's own trace track, the live status file, and the
        # journal-flush hook.  All of it is off (no-op singletons, None
        # writers) unless the sweep opted in.
        registry = metrics.configure(self.telemetry_on)
        self.incidents = []
        self._stats_folded = False
        sup_tracer = TraceBuffer(pid=0, tid=0) if self.trace_path else NULL_TRACER
        trace_writer = TraceWriter(self.trace_path) if self.trace_path else None
        ema = ThroughputEMA()
        status = (StatusWriter(self.status_path, interval=self.status_interval
                               or 2.0)
                  if self.status_path else None)
        flush_hist = registry.histogram("journal.flush_seconds")
        fsync_counter = registry.counter("journal.fsync_batches")
        synced_counter = registry.counter("journal.records_synced")

        def on_sync(batched: int, seconds: float) -> None:
            fsync_counter.inc()
            synced_counter.inc(batched)
            flush_hist.observe(seconds)

        journal_hook = on_sync if self.telemetry_on else None
        completed: dict[int, dict] = {}
        if resume:
            if not os.path.exists(self.journal_path):
                raise ServiceError(f"--resume journal {self.journal_path} does not exist")
            state = load_journal(self.journal_path)
            self._check_resume_header(state.header, header)
            if state.corrupt_tail:
                # Crash recovery, not a clean resume: say so, with enough
                # detail for an operator to audit the journal afterwards.
                truncate_to(self.journal_path, state.valid_bytes)
                stats["journal_recoveries"] += 1
                self._report_torn_tail(state, registry, sup_tracer)
            completed = {index: record for index, record in state.records.items()
                         if index in shard_set}
            stats["resumed"] = len(completed)
            writer = JournalWriter.append_to(self.journal_path)
        else:
            writer = JournalWriter.create(self.journal_path, header)
        writer.on_sync = journal_hook

        pending = deque(index for index in shard
                        if index not in completed)
        attempts: dict[int, int] = {}
        journal_fault = self.inject.journal_fault_index() if self.inject else None
        workers: dict[int, dict] = {}
        # fork shares the already-warm interpreter (and its predecode
        # artifact cache) with the workers; spawn is the portable fallback.
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
        ctx = multiprocessing.get_context(method)

        def record_done(index: int, record: dict, quarantined: bool = False) -> None:
            nonlocal writer, journal_fault
            if index in completed:
                return  # late duplicate from a worker we already gave up on
            completed[index] = record
            writer.append(record)
            stats["completed"] += 1
            if quarantined:
                stats["quarantined"] += 1
            if journal_fault is not None and index == journal_fault:
                # Injected torn tail + the full recovery cycle, mid-run: the
                # record just appended stays intact before the torn bytes.
                journal_fault = None
                writer.write_raw(b'{"index":999999999,"torn":')
                writer.close()
                state = load_journal(self.journal_path)
                truncate_to(self.journal_path, state.valid_bytes)
                writer = JournalWriter.append_to(self.journal_path)
                writer.on_sync = journal_hook
                stats["journal_recoveries"] += 1
                self._record_incident(registry, sup_tracer, {
                    "type": "torn_tail_recovery",
                    "journal": self.journal_path,
                    "valid_bytes": state.valid_bytes,
                    "dropped_bytes": len(state.corrupt_tail),
                    "torn_index": None,
                    "injected": True,
                })
            ema.update(len(completed))
            if self.progress is not None:
                self.progress(len(completed), target)

        def record_failure(index: int, cause: str, detail: str) -> None:
            attempts[index] = attempts.get(index, 0) + 1
            stats["timeouts" if cause == "timeout" else "worker_errors"] += 1
            if attempts[index] > self.retries:
                record_done(index, self._poison_record(index, cause),
                            quarantined=True)
            else:
                stats["retries"] += 1
                pending.appendleft(index)

        def absorb_meta(meta: dict) -> None:
            stats["engine_fallbacks"] += meta["fallbacks"]
            if not self.telemetry_on:
                return
            registry.absorb(meta.get("caches") or {})
            for name, seconds in meta.get("stages") or ():
                registry.histogram(name).observe(seconds)
            if trace_writer is not None:
                trace_writer.add_events(meta.get("events") or ())

        def drain(worker: dict) -> bool:
            result_q = worker["result_q"]
            try:
                if result_q.empty():
                    return False
                message = result_q.get()
            except (EOFError, OSError):
                return False
            if message[0] == "ok":
                _, index, record, meta = message
                absorb_meta(meta)
                record_done(index, record)
            else:
                _, index, detail = message
                record_failure(index, "engine", detail)
            current = worker["current"]
            if current is not None and current[0] == message[1]:
                worker["current"] = None
            return True

        start_time = time.monotonic()

        def build_status() -> dict:
            now = time.monotonic()
            # A program is a straggler once it has been in flight for 5x the
            # fleet's mean per-program wall time (and at least 2 seconds) —
            # the EMA makes the threshold track the workload, not a config.
            mean_program = (self.jobs / ema.rate) if ema.rate else None
            straggler_after = (max(5.0 * mean_program, 2.0)
                               if mean_program else float("inf"))
            workers_info = {}
            for worker_id, worker in workers.items():
                current = worker["current"]
                busy = (now - worker["started"]) if current else 0.0
                workers_info[str(worker_id)] = {
                    "alive": worker["proc"].is_alive(),
                    "os_pid": worker["proc"].pid,
                    "current_index": current[0] if current else None,
                    "busy_seconds": round(busy, 3),
                    "respawns": worker["respawns"],
                    "straggler": bool(current and busy > straggler_after),
                }
            cache = {name[len("cache."):]: value
                     for name, value in registry.counter_values("cache.").items()}
            done = len(completed) >= target
            return {
                "version": STATUS_VERSION,
                "journal": self.journal_path,
                "seed": self.seed,
                "count": self.count,
                "host_shard": list(self.host_shard) if self.host_shard else None,
                "target": target,
                "completed": len(completed),
                "resumed": stats["resumed"],
                "pending": len(pending),
                "elapsed_seconds": round(now - start_time, 3),
                "throughput_programs_per_s": (round(ema.rate, 3)
                                              if ema.rate is not None else None),
                "eta_seconds": (round(eta, 1) if (eta := ema.eta_seconds(
                    target - len(completed))) is not None else None),
                "workers": workers_info,
                "cache": cache,
                "counters": dict(stats),
                "recoveries": list(self.incidents),
                "done": done,
            }

        try:
            if pending:
                for worker_id in range(min(self.jobs, len(pending))):
                    workers[worker_id] = self._spawn_worker(ctx, worker_id)
            while len(completed) < target:
                progressed = False
                for worker_id, worker in list(workers.items()):
                    while drain(worker):
                        progressed = True
                    proc = worker["proc"]
                    if not proc.is_alive():
                        while drain(worker):
                            progressed = True
                        if worker["current"] is not None:
                            index, _attempt = worker["current"]
                            worker["current"] = None
                            record_failure(
                                index, "engine",
                                f"worker exited with code {proc.exitcode}")
                        workers[worker_id] = self._respawn(ctx, worker_id,
                                                           worker, stats)
                        progressed = True
                        continue
                    if (worker["current"] is not None
                            and time.monotonic() > worker["deadline"]):
                        index, _attempt = worker["current"]
                        worker["current"] = None
                        self._kill_worker(worker)
                        record_failure(index, "timeout",
                                       f"exceeded {self.timeout:.1f}s timeout")
                        workers[worker_id] = self._respawn(ctx, worker_id,
                                                           worker, stats)
                        progressed = True
                        continue
                    if worker["current"] is None and pending:
                        index = pending.popleft()
                        attempt = attempts.get(index, 0)
                        worker["task_q"].put(("run", index, attempt))
                        worker["current"] = (index, attempt)
                        now = time.monotonic()
                        worker["deadline"] = now + self.timeout
                        worker["started"] = now
                        progressed = True
                if status is not None:
                    status.maybe_write(build_status)
                if not progressed:
                    if not pending and all(w["current"] is None
                                           for w in workers.values()):
                        missing = sorted(shard_set - set(completed))
                        raise ServiceError(
                            f"sweep stalled with no work in flight; missing "
                            f"indices {missing[:8]}")
                    time.sleep(self.POLL_SECONDS)
            # Sweep complete: persist this session's telemetry as a journal
            # stats trailer so --resume and merge_journals can aggregate
            # per-shard stats later (records and artifacts are unaffected).
            if self.collect_stats:
                writer.append_stats(self._stats_payload(stats, registry))
        finally:
            for worker in workers.values():
                if worker["proc"].is_alive() and worker["current"] is None:
                    try:
                        worker["task_q"].put(("stop",))
                    except OSError:
                        pass
            deadline = time.monotonic() + 2.0
            for worker in workers.values():
                worker["proc"].join(max(0.0, deadline - time.monotonic()))
                self._kill_worker(worker)
            writer.close()
            if status is not None:
                status.maybe_write(build_status, force=True)
            if trace_writer is not None:
                trace_writer.set_process_name(0, "difftest-supervisor")
                for worker_id in workers:
                    trace_writer.set_process_name(worker_id + 1,
                                                  f"difftest-worker-{worker_id}")
                trace_writer.add_events(sup_tracer.drain())
                trace_writer.close()

        telemetry = None
        if self.telemetry_on:
            # Fold the service stats in as counters so one snapshot carries
            # everything the summary report and the stats trailer need.
            telemetry = self._fold_stats(stats, registry)
        return SweepOutcome(
            records=[completed[index] for index in shard],
            stats=stats,
            telemetry=telemetry,
            incidents=list(self.incidents),
        )

    def _report_torn_tail(self, state, registry, sup_tracer) -> None:
        """Distinguish a crash recovery from a clean resume.

        The human-readable stderr line is kept, but the recovery is now a
        structured incident too: a ``journal.torn_tail_recoveries`` counter,
        an entry in :attr:`incidents` (surfaced in the status file, the
        ``--stats`` trailer and :class:`SweepOutcome`), and a trace instant
        on the supervisor track.
        """
        match = re.search(rb'"index"\s*:\s*(-?\d+)', state.corrupt_tail)
        torn_index = int(match.group(1)) if match else None
        self._record_incident(registry, sup_tracer, {
            "type": "torn_tail_recovery",
            "journal": self.journal_path,
            "valid_bytes": state.valid_bytes,
            "dropped_bytes": len(state.corrupt_tail),
            "torn_index": torn_index,
            "injected": False,
        })
        sys.stderr.write(
            f"run_difftest: --resume recovered a torn tail in journal "
            f"{self.journal_path}: truncated to byte offset "
            f"{state.valid_bytes}, dropping {len(state.corrupt_tail)} "
            f"corrupt trailing byte(s); program index "
            f"{torn_index if torn_index is not None else 'unknown'} "
            f"will be re-run\n")

    def _record_incident(self, registry, sup_tracer, incident: dict) -> None:
        """File one structured recovery incident with every telemetry surface."""
        self.incidents.append(incident)
        registry.counter("journal.torn_tail_recoveries").inc()
        sup_tracer.instant(incident["type"], cat="recovery",
                           **{key: value for key, value in incident.items()
                              if key != "type"})

    def _fold_stats(self, stats: dict, registry) -> dict:
        """Fold service stats into the registry as ``service.*`` counters
        (once per run) and return a fresh snapshot.  The stats trailer and
        the outcome each take their own snapshot: the outcome's is later and
        additionally sees the journal's close-time fsync."""
        if not self._stats_folded:
            self._stats_folded = True
            for key, value in stats.items():
                if value:
                    registry.counter(f"service.{key}").inc(value)
        return registry.snapshot()

    def _stats_payload(self, stats: dict, registry) -> dict:
        """The journal stats-trailer body (``journal.STATS_KIND`` line)."""
        return {
            "version": 1,
            "host_shard": list(self.host_shard) if self.host_shard else None,
            "service": dict(stats),
            "metrics": self._fold_stats(stats, registry),
            "incidents": list(self.incidents),
        }

    def _respawn(self, ctx, worker_id: int, dead_worker: dict, stats: dict) -> dict:
        respawns = dead_worker["respawns"] + 1
        stats["respawns"] += 1
        # Exponential backoff, capped: a worker dying in a tight loop (bad
        # node, OOM thrash) must not fork-bomb the supervisor.
        time.sleep(min(0.05 * 2 ** (respawns - 1), 1.0))
        return self._spawn_worker(ctx, worker_id, respawns)

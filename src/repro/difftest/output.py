"""Sweep-artifact construction shared by the single-host and merge paths.

``scripts/run_difftest.py`` (one host, or one shard of a multi-host sweep)
and ``scripts/merge_journals.py`` (recombining per-host shard journals) must
emit byte-identical ``table5_differential_matrix.txt`` and
``difftest_corpus.json`` for the same sweep — that bit-identity is the
acceptance contract of the multi-host story, and it only holds if both
entry points build the artifacts through literally the same code.  This
module is that code: metadata, matrix text, corpus document, divergence
reductions, and the final writes.

Everything here consumes the journal's ``cell_record`` dicts, never live
:class:`~repro.difftest.runner.ProgramResult` objects: records are what
survive process boundaries, journal files and host boundaries, so they are
the only currency the merged path can possibly share with the direct path.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.difftest.generator import generate_program
from repro.difftest.oracle import (
    BASELINE,
    corpus_document_from_records,
    feature_breakdown_from_records,
    format_matrix,
    is_divergent,
    summarize_records,
)
from repro.difftest.reducer import reduce_program
from repro.difftest.runner import DifferentialRunner
from repro.telemetry import metrics

#: artifact file names, shared so every entry point and test agrees on them.
MATRIX_NAME = "table5_differential_matrix.txt"
CORPUS_NAME = "difftest_corpus.json"


def sweep_meta(*, seed: int, count: int, models, budget: int,
               generator_version: int) -> dict:
    """The sweep-identity metadata block embedded in both artifacts."""
    return {
        "seed": seed,
        "count": count,
        "models": list(models),
        "budget": budget,
        "generator_version": generator_version,
        "baseline": BASELINE,
    }


def build_outputs(records, *, meta: dict) -> tuple[str, dict]:
    """Render ``(matrix_text, corpus_document)`` from index-ordered records."""
    matrix_text = format_matrix(summarize_records(records),
                                feature_breakdown_from_records(records),
                                meta=meta)
    document = corpus_document_from_records(records, meta=meta)
    return matrix_text, document


def compute_reductions(records, *, seed: int, models, budget: int,
                       limit: int, say=None) -> list[dict]:
    """Delta-debug the first ``limit`` divergent records into minimal sources.

    Reduction replays programs live (regenerated from ``(seed, index)`` —
    records carry no sources by design), so it runs wherever the full record
    set exists: the single-host supervisor, or the merge host.  Quarantined
    cells (``error:engine``/``error:timeout``) have nothing to replay and
    are skipped.

    Each reduction also carries the static predictor's verdict for the
    *reduced* source under the divergent model, plus a
    ``static_verdict_changed`` flag comparing it against the original
    program's static verdict: delta-debugging preserves the dynamic
    category by construction, so a changed static verdict means the
    reduction crossed into a region the analyzer models differently — those
    are the reductions worth a manual look before being trusted as minimal
    reproducers (see docs/staticcheck.md).
    """
    if not limit:
        return []
    # Imported lazily: repro.staticcheck's package init pulls in the
    # predictor, which imports repro.difftest.runner (already imported at
    # the top of this module — a module-level import would cycle during
    # package init).
    from repro.staticcheck.predict import predict_source
    models = tuple(models)
    runner = DifferentialRunner(models=models, budget=budget, analyze=False)
    reductions: list[dict] = []
    for record in records:
        if len(reductions) >= limit:
            break
        classification = record["classification"]
        if not is_divergent(classification):
            continue
        model = next(m for m in models
                     if classification[m] not in ("agree", "agree-trap"))
        category = classification[model]
        if category in ("error:engine", "error:timeout"):
            continue
        program = generate_program(seed, record["index"])
        begin = time.perf_counter()
        try:
            reduction = reduce_program(program, model, category, runner=runner)
        except ValueError:
            continue
        # Post-sweep stage: instrumented against the module registry (null
        # singletons when telemetry is off), never through the journal.
        metrics.histogram("stage.reduce").observe(time.perf_counter() - begin)
        metrics.counter("reduce.programs").inc()
        if say is not None:
            say(f"  reduced program {program.index} "
                f"({model}={category}): {reduction.original_statements} -> "
                f"{reduction.reduced_statements} statements "
                f"in {reduction.tests_run} runs")
        original_verdict = predict_source(
            program.source, models=(model,), budget=budget).get(model)
        reduced_verdict = predict_source(
            reduction.source, models=(model,), budget=budget).get(model)
        reductions.append({
            "index": program.index,
            "model": model,
            "category": category,
            "statements_before": reduction.original_statements,
            "statements_after": reduction.reduced_statements,
            "source": reduction.source,
            "static_prediction": reduced_verdict,
            "static_verdict_changed": reduced_verdict != original_verdict,
        })
    return reductions


def write_outputs(out_dir, matrix_text: str, document: dict
                  ) -> tuple[pathlib.Path, pathlib.Path]:
    """Write both artifacts with the canonical serialization settings."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    matrix_path = out_dir / MATRIX_NAME
    corpus_path = out_dir / CORPUS_NAME
    matrix_path.write_text(matrix_text + "\n", encoding="utf-8")
    corpus_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
    return matrix_path, corpus_path

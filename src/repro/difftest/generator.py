"""Seeded, grammar-directed mini-C program generator.

Programs are built directly as :mod:`repro.minic.astnodes` trees — never as
text templates — so they are inside the mini-C grammar and type-correct *by
construction*: every expression is assembled from typed building blocks and
rendered through :func:`repro.minic.unparse.unparse`.  The generator is
biased toward the paper's idiom catalogue (Table 1): int<->pointer casts,
out-of-bounds array probes, sub-object pointer arithmetic, aliasing through
unions and ``memcpy``, pointer laundering through byte copies, and
use-after-free against the heap.

Two invariants matter for the differential oracle:

* **Termination by construction.**  Every loop has a literal bound, helper
  functions are generated before ``main`` and never recurse, so no program
  needs the instruction budget (it exists as a backstop only).
* **Layout-independent checksums.**  The running checksum ``chk`` (folded
  into ``mini_checkpoint`` and the exit status — the oracle's *semantic*
  channel) never absorbs raw addresses, pointer-width-dependent ``sizeof``
  values, or struct layouts containing pointers.  Layout-dependent values
  are printed instead (the *output* channel), which is what lets the oracle
  separate silent corruption from benign ABI differences.

Determinism: a program is a pure function of ``(corpus_seed, index)`` via a
splitmix-style derivation into :class:`repro.common.rng.DeterministicRng`.
The full scenario catalogue — including v2's stack-escape, GC-shaped heap
churn, ``__capability``-qualified pointer and string-intrinsic templates —
is documented in ``docs/difftest.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import mask
from repro.common.rng import DeterministicRng
from repro.minic import astnodes as ast
from repro.minic.typesys import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    Qualifiers,
    StructField,
    StructType,
)
from repro.minic.unparse import unparse

#: bump when generated programs change shape; recorded in the corpus JSON so
#: stale goldens fail loudly instead of mysteriously.  v2 added the
#: stack-escape, gc_churn, qualified-pointer and string-intrinsic scenario
#: templates (every classification golden was re-pinned with the shift
#: explained as a semantic diff).
GENERATOR_VERSION = 2

_MASK64 = mask(64)

# ---------------------------------------------------------------------------
# Type singletons (only used for rendering; the real type checking happens
# when the rendered source is compiled by the ordinary front end)
# ---------------------------------------------------------------------------

INT = IntType(bytes=4, signed=True, name="int")
UINT = IntType(bytes=4, signed=False, name="unsigned int")
LONG = IntType(bytes=8, signed=True, name="long")
CHAR = IntType(bytes=1, signed=True, name="char")
INTPTR = IntType(bytes=8, signed=True, name="intptr_t", is_pointer_sized=True)
CONST_CHAR = IntType(bytes=1, signed=True, name="char", qualifiers=Qualifiers.CONST)


def ptr(t: CType) -> PointerType:
    return PointerType(pointee=t)


# ---------------------------------------------------------------------------
# AST shorthands
# ---------------------------------------------------------------------------


def lit(value: int) -> ast.IntLiteral:
    return ast.IntLiteral(value=value)


def ident(name: str) -> ast.Identifier:
    return ast.Identifier(name=name)


def binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.Binary:
    return ast.Binary(op=op, left=left, right=right)


def unary(op: str, operand: ast.Expr) -> ast.Unary:
    return ast.Unary(op=op, operand=operand)


def assign(target: ast.Expr, value: ast.Expr, op: str = "=") -> ast.Stmt:
    return ast.ExprStmt(expr=ast.Assign(op=op, target=target, value=value))


def index(base: ast.Expr, idx: ast.Expr | int) -> ast.Index:
    return ast.Index(base=base, index=lit(idx) if isinstance(idx, int) else idx)


def member(base: ast.Expr, name: str, *, arrow: bool = False) -> ast.Member:
    return ast.Member(base=base, member=name, arrow=arrow)


def call(callee: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(callee=callee, args=list(args))


def call_stmt(callee: str, *args: ast.Expr) -> ast.Stmt:
    return ast.ExprStmt(expr=call(callee, *args))


def cast(target_type: CType, operand: ast.Expr) -> ast.Cast:
    return ast.Cast(target_type=target_type, operand=operand)


def decl(name: str, ctype: CType, initializer: ast.Expr | None = None,
         array_initializer: list[ast.Expr] | None = None) -> ast.Declaration:
    return ast.Declaration(name=name, ctype=ctype, initializer=initializer,
                           array_initializer=array_initializer)


def for_range(counter: str, count: int, body: list[ast.Stmt]) -> ast.For:
    """``for (int counter = 0; counter < count; counter++) { body }``."""
    return ast.For(
        init=decl(counter, INT, lit(0)),
        condition=binop("<", ident(counter), lit(count)),
        step=ast.IncDec(op="++", operand=ident(counter), is_prefix=False),
        body=ast.Block(statements=body),
    )


# ---------------------------------------------------------------------------
# Generated program container
# ---------------------------------------------------------------------------


@dataclass
class GeneratedProgram:
    """One generated program plus the metadata the pipeline needs."""

    corpus_seed: int
    index: int
    seed: int
    features: tuple[str, ...]
    structs: list[StructType]
    unit: ast.TranslationUnit
    _source: str | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"gen_{self.corpus_seed}_{self.index}"

    @property
    def source(self) -> str:
        if self._source is None:
            self._source = self.render()
        return self._source

    def render(self) -> str:
        header = (f"{self.name}: generated by repro.difftest.generator "
                  f"v{GENERATOR_VERSION} (seed={self.seed:#x})\n"
                  f"features: {', '.join(self.features) or 'none'}")
        return unparse(self.unit, structs=self.structs, header=header)

    def invalidate_source(self) -> None:
        """Forget the cached rendering (used after AST mutation by the reducer)."""
        self._source = None


def _derive_seed(corpus_seed: int, index: int) -> int:
    """splitmix64-style mix so adjacent indices give unrelated streams."""
    z = (corpus_seed * 0x9E3779B97F4A7C15 + (index + 1) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) or 1


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class ProgramGenerator:
    """Builds pointer-idiom-heavy programs from a deterministic seed."""

    #: scenarios that stay within the paper's *supported* idiom envelope:
    #: they may still trap under restrictive models (CHERIv2 rejects most of
    #: them — that is the v2-vs-v3 story) but never probe out of bounds or
    #: use freed memory, so the PDP-11/relaxed/strict row mostly agrees.
    SAFE_SCENARIOS = (
        ("arith", 3),
        ("loop_sum", 3),
        ("helper_call", 3),
        ("int_roundtrip", 2),
        ("int_arith", 2),
        ("mask", 2),
        ("container", 2),
        ("subobject", 2),
        ("union_pun", 2),
        ("memcpy_alias", 2),
        ("layout_probe", 2),
        ("abi_assume", 2),
        ("string_ops", 2),
        ("gc_churn", 2),
        ("qualified", 2),
        ("wide", 1),
    )

    #: scenarios that violate memory safety on purpose; checking models trap
    #: on them and everything after the trap is masked, so the profiles
    #: below keep them isolated (at most one per program except in the
    #: deliberately hostile tail of the corpus).
    UNSAFE_SCENARIOS = (
        ("oob_read", 3),
        ("oob_write", 2),
        ("uaf", 2),
        ("ptr_launder_copy", 2),
        ("helper_oob", 2),
        ("stack_escape", 2),
        ("deconst", 1),
    )

    def __init__(self, corpus_seed: int) -> None:
        self.corpus_seed = corpus_seed
        self._safe = [name for name, weight in self.SAFE_SCENARIOS for _ in range(weight)]
        self._unsafe = [name for name, weight in self.UNSAFE_SCENARIOS for _ in range(weight)]

    # ------------------------------------------------------------------

    def generate(self, index: int) -> GeneratedProgram:
        seed = _derive_seed(self.corpus_seed, index)
        self.rng = DeterministicRng(seed)
        self.features: list[str] = []
        self.structs: list[StructType] = []
        self.body: list[ast.Stmt] = []
        self.helpers: list[ast.FunctionDef] = []
        self.globals: list[ast.Declaration] = []
        self._counters: dict[str, int] = {}

        # symbol pools the scenarios draw from: (name, element count)
        self.int_arrays: list[tuple[str, int]] = []
        self.char_arrays: list[tuple[str, int]] = []
        self.heap_arrays: list[tuple[str, int]] = []   # alive malloc'd int arrays
        self.int_vars: list[str] = []
        self.struct_var: tuple[str, StructType] | None = None
        self.union_var: tuple[str, StructType] | None = None
        self.helper_sigs: list[tuple[str, str]] = []   # (name, kind)

        self._prologue()
        # Program profiles: ~30% exercise only idioms the paper classifies
        # as "should work" (populating the agree/benign/corrupt columns and
        # the CHERIv2 rejection rows), ~50% add exactly one deliberate
        # memory-safety violation at a random point, and ~20% are hostile
        # (any mix).  Without the isolation, the first trap masks everything
        # downstream and the matrix degenerates to all-trap.
        roll = self.rng.randint(1, 100)
        if roll <= 30:
            plan = [self.rng.choice(self._safe) for _ in range(self.rng.randint(4, 8))]
        elif roll <= 80:
            plan = [self.rng.choice(self._safe) for _ in range(self.rng.randint(3, 7))]
            plan.insert(self.rng.randint(0, len(plan)), self.rng.choice(self._unsafe))
        else:
            pool = self._safe + self._unsafe
            plan = [self.rng.choice(pool) for _ in range(self.rng.randint(5, 9))]
        for name in plan:
            getattr(self, f"_scenario_{name}")()
        self._epilogue()

        unit = ast.TranslationUnit(
            declarations=self.globals,
            functions=self.helpers + [self._main()],
        )
        return GeneratedProgram(
            corpus_seed=self.corpus_seed,
            index=index,
            seed=seed,
            features=tuple(dict.fromkeys(self.features)),
            structs=self.structs,
            unit=unit,
        )

    # ------------------------------------------------------------------
    # Naming / small helpers
    # ------------------------------------------------------------------

    def _name(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"

    def _fold(self, expr: ast.Expr) -> None:
        """``chk = chk * 33 + (expr);`` — the semantic checksum channel."""
        self.body.append(assign(ident("chk"),
                                binop("+", binop("*", ident("chk"), lit(33)), expr)))

    def _checkpoint(self) -> None:
        self.body.append(call_stmt("mini_checkpoint", cast(INT, ident("chk"))))

    def _pick_array(self, *, writable: bool = False) -> tuple[str, int]:
        """Any live int-element array (stack, global or heap)."""
        pools = self.int_arrays + self.heap_arrays
        return self.rng.choice(pools)

    def _literal_values(self, count: int, low: int = -9, high: int = 99) -> list[ast.Expr]:
        return [lit(self.rng.randint(low, high)) for _ in range(count)]

    # ------------------------------------------------------------------
    # Program skeleton
    # ------------------------------------------------------------------

    def _prologue(self) -> None:
        rng = self.rng
        # one or two global int arrays with literal initializers
        for _ in range(rng.randint(1, 2)):
            name = self._name("g")
            length = rng.randint(4, 10)
            self.globals.append(decl(name, ArrayType(element=INT, count=length),
                                     array_initializer=self._literal_values(length)))
            self.int_arrays.append((name, length))

        # a pointer-free struct: layout identical across pointer widths, so
        # offsetof/sizeof on it are checksum-safe
        s_fields = [StructField(name="f0", ctype=LONG)]
        for i in range(1, rng.randint(2, 4)):
            kind = rng.choice(("int", "int", "arr", "char"))
            if kind == "arr":
                s_fields.append(StructField(name=f"f{i}",
                                            ctype=ArrayType(element=INT, count=rng.randint(2, 4))))
            elif kind == "char":
                s_fields.append(StructField(name=f"f{i}", ctype=CHAR))
            else:
                s_fields.append(StructField(name=f"f{i}", ctype=INT))
        struct = StructType(tag="S0", fields=s_fields)
        struct.complete = True
        self.structs.append(struct)

        # a union for type punning
        union = StructType(tag="U0", is_union=True, complete=True, fields=[
            StructField(name="whole", ctype=LONG),
            StructField(name="half", ctype=ArrayType(element=INT, count=2)),
            StructField(name="bytes", ctype=ArrayType(element=CHAR, count=8)),
        ])
        self.structs.append(union)

        # main locals
        self.body.append(decl("chk", LONG, lit(1)))
        for _ in range(rng.randint(1, 2)):
            name = self._name("a")
            length = rng.randint(4, 8)
            self.body.append(decl(name, ArrayType(element=INT, count=length),
                                  array_initializer=self._literal_values(length)))
            self.int_arrays.append((name, length))
        cname = self._name("c")
        clen = rng.randint(8, 12)
        self.body.append(decl(cname, ArrayType(element=CHAR, count=clen),
                              array_initializer=[
                                  ast.CharLiteral(value=rng.randint(97, 122))
                                  for _ in range(clen)]))
        self.char_arrays.append((cname, clen))

        sname = self._name("s")
        self.body.append(decl(sname, struct))
        for i, f in enumerate(struct.fields):
            if isinstance(f.ctype, ArrayType):
                for j in range(f.ctype.count):
                    self.body.append(assign(index(member(ident(sname), f.name), j),
                                            lit(rng.randint(1, 50))))
            else:
                self.body.append(assign(member(ident(sname), f.name), lit(rng.randint(1, 50))))
        self.struct_var = (sname, struct)

        uname = self._name("u")
        self.body.append(decl(uname, union))
        self.body.append(assign(member(ident(uname), "whole"),
                                lit(rng.randint(1, 1 << 40))))
        self.union_var = (uname, union)

        # a heap allocation, filled by a bounded loop
        hname = self._name("h")
        hlen = rng.randint(4, 8)
        self.body.append(decl(hname, ptr(INT),
                              cast(ptr(INT), call("malloc", lit(hlen * 4)))))
        i = self._name("i")
        self.body.append(for_range(i, hlen, [
            assign(index(ident(hname), ident(i)),
                   binop("*", ident(i), lit(rng.randint(2, 9)))),
        ]))
        self.heap_arrays.append((hname, hlen))

        # helper functions main can call (generated first, never recursive)
        for _ in range(rng.randint(1, 2)):
            self._make_helper()

    def _make_helper(self) -> None:
        rng = self.rng
        name = self._name("helper")
        op = rng.choice(("+", "^", "+", "*"))
        body = [
            decl("acc", INT, lit(rng.randint(0, 3))),
            for_range("i", 0, []),  # placeholder replaced below
            ast.Return(value=ident("acc")),
        ]
        loop_body = [assign(ident("acc"), index(ident("p"), ident("i")), op="+=")
                     if op == "+" else
                     assign(ident("acc"),
                            binop(op, ident("acc"), index(ident("p"), ident("i"))))]
        body[1] = ast.For(
            init=decl("i", INT, lit(0)),
            condition=binop("<", ident("i"), ident("n")),
            step=ast.IncDec(op="++", operand=ident("i"), is_prefix=False),
            body=ast.Block(statements=loop_body),
        )
        self.helpers.append(ast.FunctionDef(
            name=name, return_type=INT,
            params=[ast.Parameter(name="p", ctype=ptr(INT)),
                    ast.Parameter(name="n", ctype=INT)],
            body=ast.Block(statements=body),
        ))
        self.helper_sigs.append((name, "sum"))

    def _epilogue(self) -> None:
        self._checkpoint()
        self.body.append(call_stmt("mini_output_int",
                                   cast(INT, binop("&", ident("chk"), lit(65535)))))
        self.body.append(ast.Return(value=cast(INT, binop("&", ident("chk"), lit(63)))))

    def _main(self) -> ast.FunctionDef:
        return ast.FunctionDef(name="main", return_type=INT, params=[],
                               body=ast.Block(statements=self.body))

    # ------------------------------------------------------------------
    # Scenarios — each appends statements to main and tags a feature
    # ------------------------------------------------------------------

    def _scenario_arith(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        v = self._name("v")
        self.body.append(decl(v, INT, lit(rng.randint(-20, 20))))
        expr: ast.Expr = ident(v)
        for _ in range(rng.randint(1, 3)):
            op = rng.choice(("+", "-", "*", "^", "|"))
            expr = binop(op, expr, index(ident(arr), rng.randint(0, length - 1)))
        self.body.append(assign(ident(v), expr))
        self.int_vars.append(v)
        self._fold(ident(v))
        self.features.append("arith")

    def _scenario_loop_sum(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        acc = self._name("v")
        i = self._name("i")
        self.body.append(decl(acc, INT, lit(0)))
        self.body.append(for_range(i, length, [
            assign(ident(acc),
                   binop("+", ident(acc),
                         binop("*", index(ident(arr), ident(i)),
                               lit(rng.randint(1, 5))))),
        ]))
        self.int_vars.append(acc)
        self._fold(ident(acc))
        self.features.append("loop")

    def _scenario_helper_call(self) -> None:
        rng = self.rng
        if not self.helper_sigs:
            return
        name, _ = rng.choice(self.helper_sigs)
        arr, length = self._pick_array()
        self._fold(call(name, ident(arr), lit(length)))
        self.features.append("helper")
        self._checkpoint()

    def _scenario_helper_oob(self) -> None:
        """An interprocedural out-of-bounds probe: the helper's loop bound
        reaches one element past the end of the argument array."""
        rng = self.rng
        if not self.helper_sigs:
            return
        name, _ = rng.choice(self.helper_sigs)
        arr, length = self._pick_array()
        self._fold(call(name, ident(arr), lit(length + 1)))
        self.features.append("helper_oob")
        self._checkpoint()

    def _scenario_oob_read(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        offset = length + rng.randint(0, 2)
        self._fold(index(ident(arr), offset))
        self.features.append("oob_read")
        self._checkpoint()

    def _scenario_oob_write(self) -> None:
        rng = self.rng
        # a dedicated victim pair: writing past `oa` lands in `ob`, so the
        # corruption is observable on models that allow it
        oa = self._name("oa")
        ob = self._name("ob")
        self.body.append(decl(oa, ArrayType(element=INT, count=4),
                              array_initializer=self._literal_values(4)))
        self.body.append(decl(ob, ArrayType(element=INT, count=4),
                              array_initializer=self._literal_values(4)))
        self.body.append(assign(index(ident(oa), 4 + rng.randint(0, 1)),
                                lit(rng.randint(100, 999))))
        for j in range(4):
            self._fold(index(ident(ob), j))
        self.features.append("oob_write")
        self._checkpoint()

    def _scenario_int_roundtrip(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        ip = self._name("ip")
        q = self._name("q")
        target = index(ident(arr), rng.randint(0, length - 1))
        self.body.append(decl(ip, INTPTR, cast(INTPTR, unary("&", target))))
        self.body.append(decl(q, ptr(INT), cast(ptr(INT), ident(ip))))
        self._fold(unary("*", ident(q)))
        self.features.append("int_roundtrip")
        self._checkpoint()

    def _scenario_int_arith(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        base = self._name("ip")
        addr = self._name("ip")
        idx = rng.randint(0, length - 1)
        self.body.append(decl(base, INTPTR, cast(INTPTR, ident(arr))))
        self.body.append(decl(addr, INTPTR,
                              binop("+", ident(base),
                                    binop("*", lit(idx), ast.SizeofType(target_type=INT)))))
        self._fold(unary("*", cast(ptr(INT), ident(addr))))
        self.features.append("int_arith")
        self._checkpoint()

    def _scenario_mask(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        tagged = self._name("ip")
        clean = self._name("ip")
        bit = rng.choice((1, 2))
        self.body.append(decl(tagged, INTPTR,
                              binop("|", cast(INTPTR, ident(arr)), lit(bit))))
        self.body.append(decl(clean, INTPTR,
                              binop("&", ident(tagged),
                                    unary("~", cast(INTPTR, lit(bit))))))
        self._fold(unary("*", cast(ptr(INT), ident(clean))))
        self._fold(binop("&", ident(tagged), lit(bit)))
        self.features.append("mask")
        self._checkpoint()

    def _scenario_container(self) -> None:
        rng = self.rng
        sname, struct = self.struct_var
        inner = [f for f in struct.fields[1:] if isinstance(f.ctype, IntType)
                 and f.ctype.name == "int"]
        if not inner:
            return
        fld = rng.choice(inner)
        tp = self._name("tp")
        op = self._name("op")
        self.body.append(decl(tp, ptr(INT), unary("&", member(ident(sname), fld.name))))
        recovered = cast(ptr(struct),
                         binop("-", cast(ptr(CHAR), ident(tp)),
                               ast.OffsetOf(target_type=struct, member=fld.name)))
        self.body.append(decl(op, ptr(struct), recovered))
        self._fold(member(ident(op), "f0", arrow=True))
        self.features.append("container")
        self._checkpoint()

    def _scenario_subobject(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        p = self._name("p")
        over = rng.randint(1, 4)
        inbounds = rng.randint(0, length - 1)
        self.body.append(decl(p, ptr(INT),
                              binop("+", ident(arr), lit(length + over))))
        self.body.append(assign(ident(p),
                                binop("-", ident(p), lit(length + over - inbounds))))
        self._fold(unary("*", ident(p)))
        d = self._name("v")
        self.body.append(decl(d, LONG,
                              binop("-", binop("+", ident(arr), lit(length)), ident(arr))))
        self._fold(ident(d))
        self.features.append("subobject")
        self._checkpoint()

    def _scenario_union_pun(self) -> None:
        rng = self.rng
        uname, _ = self.union_var
        self.body.append(assign(member(ident(uname), "whole"),
                                lit(rng.randint(1, 1 << 40))))
        self._fold(index(member(ident(uname), "half"), rng.randint(0, 1)))
        self._fold(index(member(ident(uname), "bytes"), rng.randint(0, 7)))
        self.features.append("union_pun")
        self._checkpoint()

    def _scenario_memcpy_alias(self) -> None:
        rng = self.rng
        pools = self.int_arrays + self.heap_arrays
        src, src_len = rng.choice(pools)
        dst, dst_len = rng.choice(pools)
        if src == dst:
            self.features.append("memcpy_self")
        count = min(src_len, dst_len, rng.randint(2, 6))
        self.body.append(call_stmt("memcpy", ident(dst), ident(src), lit(count * 4)))
        self._fold(index(ident(dst), rng.randint(0, count - 1)))
        self.features.append("memcpy_alias")
        self._checkpoint()

    def _scenario_ptr_launder_copy(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        src = self._name("ps")
        dst = self._name("pd")
        sb = self._name("cb")
        db = self._name("cb")
        i = self._name("i")
        self.body.append(decl(src, ArrayType(element=ptr(INT), count=1)))
        self.body.append(decl(dst, ArrayType(element=ptr(INT), count=1)))
        self.body.append(assign(index(ident(src), 0),
                                binop("+", ident(arr), lit(rng.randint(0, length - 1)))))
        self.body.append(decl(sb, ptr(CHAR), cast(ptr(CHAR), ident(src))))
        self.body.append(decl(db, ptr(CHAR), cast(ptr(CHAR), ident(dst))))
        self.body.append(ast.For(
            init=decl(i, INT, lit(0)),
            condition=binop("<", ident(i),
                            cast(INT, ast.SizeofType(target_type=ptr(INT)))),
            step=ast.IncDec(op="++", operand=ident(i), is_prefix=False),
            body=ast.Block(statements=[
                assign(index(ident(db), ident(i)), index(ident(sb), ident(i))),
            ]),
        ))
        self._fold(unary("*", index(ident(dst), 0)))
        self.features.append("ptr_launder_copy")
        self._checkpoint()

    def _scenario_uaf(self) -> None:
        rng = self.rng
        if not self.heap_arrays:
            return
        pick = rng.randint(0, len(self.heap_arrays) - 1)
        name, length = self.heap_arrays.pop(pick)
        self.body.append(call_stmt("free", ident(name)))
        self._fold(index(ident(name), rng.randint(0, length - 1)))
        self.features.append("uaf")
        self._checkpoint()

    def _scenario_deconst(self) -> None:
        rng = self.rng
        cname, clen = rng.choice(self.char_arrays)
        cp = self._name("cp")
        self.body.append(decl(cp, ptr(CONST_CHAR), ident(cname)))
        slot = rng.randint(0, clen - 1)
        self.body.append(assign(index(cast(ptr(CHAR), ident(cp)), slot),
                                ast.CharLiteral(value=rng.randint(65, 90))))
        self._fold(index(ident(cname), slot))
        self.features.append("deconst")
        self._checkpoint()

    def _ensure_ptr_struct(self) -> StructType:
        """A struct with a pointer member: its layout depends on the ABI."""
        for struct in self.structs:
            if struct.tag == "P0":
                return struct
        struct = StructType(tag="P0", complete=True, fields=[
            StructField(name="head", ctype=INT),
            StructField(name="link", ctype=ptr(INT)),
            StructField(name="tail", ctype=INT),
        ])
        self.structs.append(struct)
        return struct

    def _scenario_abi_assume(self) -> None:
        """Fold ABI-dependent layout facts into the semantic checksum.

        This is the paper's porting-effort story (§4): code that bakes in
        ``sizeof``/``offsetof`` of pointer-bearing structs runs to completion
        under a capability ABI but silently computes different answers —
        the oracle's ``corrupt`` category, fail-open rather than fail-closed.
        """
        rng = self.rng
        struct = self._ensure_ptr_struct()
        which = rng.choice(("sizeof_struct", "offsetof_tail", "sizeof_ptr"))
        if which == "sizeof_struct":
            self._fold(cast(INT, ast.SizeofType(target_type=struct)))
        elif which == "offsetof_tail":
            self._fold(cast(INT, ast.OffsetOf(target_type=struct, member="tail")))
        else:
            self._fold(cast(INT, ast.SizeofType(target_type=ptr(INT))))
        self.features.append("abi_assume")
        self._checkpoint()

    def _scenario_layout_probe(self) -> None:
        # pointer-width-dependent values go to the OUTPUT channel only: the
        # oracle classifies an output-only difference as benign
        self.body.append(call_stmt(
            "printf", ast.StringLiteral(value="layout %d %d\n"),
            cast(INT, ast.SizeofType(target_type=ptr(INT))),
            cast(INT, ast.SizeofType(target_type=INTPTR))))
        self.features.append("layout_probe")

    def _scenario_string_ops(self) -> None:
        """C string intrinsics over a correctly-sized stack buffer.

        ``strcpy``/``strcat``/``strlen``/``strcmp`` results are
        layout-independent (lengths and sign comparisons), so they feed the
        semantic checksum; the ``strchr`` fold subtracts two pointers — the
        paper's SUB idiom — which CHERIv2 rejects with a ``ptrdiff`` trap.
        """
        rng = self.rng
        buf = self._name("sb")
        word = "".join(chr(rng.randint(97, 122)) for _ in range(rng.randint(3, 5)))
        tail = "".join(chr(rng.randint(97, 122)) for _ in range(rng.randint(2, 4)))
        self.body.append(decl(buf, ArrayType(element=CHAR, count=16)))
        self.body.append(call_stmt("strcpy", ident(buf), ast.StringLiteral(value=word)))
        self.body.append(call_stmt("strcat", ident(buf), ast.StringLiteral(value=tail)))
        self._fold(call("strlen", ident(buf)))
        self._fold(call("strcmp", ident(buf), ast.StringLiteral(value=word)))
        needle = word[rng.randint(0, len(word) - 1)]
        self._fold(binop("-", call("strchr", ident(buf), ast.CharLiteral(value=ord(needle))),
                         ident(buf)))
        self.features.append("string_ops")
        self._checkpoint()

    def _ensure_node_struct(self) -> StructType:
        """A self-referential linked-list node (the GC workload shape)."""
        for struct in self.structs:
            if struct.tag == "N0":
                return struct
        node = StructType(tag="N0", complete=True, fields=[])
        node.fields = [StructField(name="val", ctype=LONG),
                       StructField(name="next", ctype=ptr(node))]
        self.structs.append(node)
        return node

    def _scenario_gc_churn(self) -> None:
        """Heap churn in the collector's shape: build a linked list, traverse
        it, launder the head address through a plain integer (§3.6's integer
        hoarding), unlink-and-free a middle node, and keep using the rest.

        Only node payloads feed the checksum (``sizeof(struct N0)`` is
        ABI-dependent and goes to ``malloc`` alone), so the baseline is
        layout-independent while the integer-laundered reload diverges under
        capability models and the frees move the heap metrics the corpus
        JSON records per model.
        """
        rng = self.rng
        node = self._ensure_node_struct()
        count = rng.randint(3, 5)
        head = self._name("nd")
        self.body.append(decl(head, ptr(node), cast(ptr(node), lit(0))))
        for _ in range(count):
            tmp = self._name("nd")
            self.body.append(decl(tmp, ptr(node),
                                  cast(ptr(node), call("malloc",
                                                       ast.SizeofType(target_type=node)))))
            self.body.append(assign(member(ident(tmp), "val", arrow=True),
                                    lit(rng.randint(1, 99))))
            self.body.append(assign(member(ident(tmp), "next", arrow=True), ident(head)))
            self.body.append(assign(ident(head), ident(tmp)))
        cursor = self._name("nd")
        i = self._name("i")
        self.body.append(decl(cursor, ptr(node), ident(head)))
        self.body.append(for_range(i, count, [
            assign(ident("chk"),
                   binop("+", binop("*", ident("chk"), lit(33)),
                         member(ident(cursor), "val", arrow=True))),
            assign(ident(cursor), member(ident(cursor), "next", arrow=True)),
        ]))
        stash = self._name("ip")
        self.body.append(decl(stash, LONG, cast(LONG, ident(head))))
        recovered = self._name("nd")
        self.body.append(decl(recovered, ptr(node), cast(ptr(node), ident(stash))))
        self._fold(member(ident(recovered), "val", arrow=True))
        victim = self._name("nd")
        self.body.append(decl(victim, ptr(node),
                              member(ident(head), "next", arrow=True)))
        self.body.append(assign(member(ident(head), "next", arrow=True),
                                member(ident(victim), "next", arrow=True)))
        self.body.append(call_stmt("free", ident(victim)))
        self._fold(member(ident(head), "val", arrow=True))
        self.features.append("gc_churn")
        self._checkpoint()

    def _scenario_qualified(self) -> None:
        """``__capability``-qualified pointers (paper §4.1).

        Reads through ``__capability``/``__input`` views agree everywhere;
        a write through an ``__input`` view is silently tolerated by
        PDP-11-style models but is a hardware ``permission`` trap under
        models that enforce capability qualifiers — the annotated hybrid-ABI
        story.  ``__output`` writes stay legal everywhere (read back through
        the unqualified name).
        """
        rng = self.rng
        arr, length = self._pick_array()
        index_ = rng.randint(0, length - 1)
        which = rng.choice(("cap_read", "input_read", "input_write", "output_write"))
        q = self._name("qp")
        if which == "cap_read":
            ctype = PointerType(pointee=INT, qualifiers=Qualifiers.CAPABILITY)
            self.body.append(decl(q, ctype, ident(arr)))
            self._fold(index(ident(q), index_))
        elif which == "input_read":
            ctype = PointerType(pointee=INT,
                                qualifiers=Qualifiers.INPUT | Qualifiers.CAPABILITY)
            self.body.append(decl(q, ctype, ident(arr)))
            self._fold(index(ident(q), index_))
        elif which == "input_write":
            ctype = PointerType(pointee=INT,
                                qualifiers=Qualifiers.INPUT | Qualifiers.CAPABILITY)
            self.body.append(decl(q, ctype, ident(arr)))
            self.body.append(assign(index(ident(q), index_), lit(rng.randint(100, 999))))
            self._fold(index(ident(arr), index_))
        else:
            ctype = PointerType(pointee=INT,
                                qualifiers=Qualifiers.OUTPUT | Qualifiers.CAPABILITY)
            self.body.append(decl(q, ctype, ident(arr)))
            self.body.append(assign(index(ident(q), index_), lit(rng.randint(100, 999))))
            self._fold(index(ident(arr), index_))
        self.features.append("qualified")
        self._checkpoint()

    def _scenario_stack_escape(self) -> None:
        """A helper returns a pointer to its own local; main dereferences it.

        The stack object is retired when the helper's frame pops, so
        temporal-safety models trap (``uaf``) while the PDP-11 view reads
        the stale — but deterministic and layout-independent — value the
        helper wrote there.
        """
        rng = self.rng
        name = self._name("escape")
        seed = rng.randint(2, 40)
        slot = rng.randint(0, 3)
        body: list[ast.Stmt] = [decl("local", ArrayType(element=INT, count=4))]
        for j in range(4):
            body.append(assign(index(ident("local"), j),
                               binop("+", binop("*", ident("seed"), lit(j + 2)),
                                     lit(rng.randint(1, 9)))))
        body.append(ast.Return(value=unary("&", index(ident("local"), slot))))
        self.helpers.append(ast.FunctionDef(
            name=name, return_type=ptr(INT),
            params=[ast.Parameter(name="seed", ctype=INT)],
            body=ast.Block(statements=body),
        ))
        p = self._name("sp")
        self.body.append(decl(p, ptr(INT), call(name, lit(seed))))
        self._fold(unary("*", ident(p)))
        self.features.append("stack_escape")
        self._checkpoint()

    def _scenario_wide(self) -> None:
        rng = self.rng
        arr, length = self._pick_array()
        w = self._name("w")
        wp = self._name("wp")
        self.body.append(decl(w, UINT,
                              cast(UINT, cast(INTPTR, ident(arr)))))
        self.body.append(decl(wp, ptr(INT), cast(ptr(INT), cast(INTPTR, ident(w)))))
        # compare, do not dereference: every model loses address bits here,
        # and the comparison result is identical (and explainable) everywhere
        self._fold(binop("==", cast(INTPTR, ident(wp)), cast(INTPTR, ident(arr))))
        self.features.append("wide")
        self._checkpoint()


def generate_program(corpus_seed: int, index: int) -> GeneratedProgram:
    return ProgramGenerator(corpus_seed).generate(index)


def generate_corpus(corpus_seed: int, count: int) -> list[GeneratedProgram]:
    generator = ProgramGenerator(corpus_seed)
    return [generator.generate(i) for i in range(count)]

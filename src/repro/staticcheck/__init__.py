"""Static memory-safety prediction for the difftest oracle.

``repro.staticcheck`` is the static half of the static<->dynamic
cross-validation story (see ``docs/staticcheck.md``): a flow-sensitive
abstract interpreter over the typed mini-C IR that predicts, per program and
per memory model, the verdict the dynamic 7-model oracle will reach —
without running the differential machines.

Package map:

* :mod:`repro.staticcheck.domain`  — the abstract value domain and the
  per-model walk outcome vocabulary;
* :mod:`repro.staticcheck.absint`  — the multi-model abstract walk (one
  shared store per pointer layout, per-model metadata planes);
* :mod:`repro.staticcheck.predict` — per-program verdict assembly in the
  oracle's taxonomy;
* :mod:`repro.staticcheck.facts`   — proven dataflow facts exported to the
  interpreter (`interp/artifact.py`) and the idiom detector;
* :mod:`repro.staticcheck.crossval` — the static-vs-dynamic sweep, confusion
  matrix and corpus annotation used by ``scripts/run_staticcheck.py``.
"""

from repro.staticcheck.domain import Bail, ModelOutcome, WalkOutcome
from repro.staticcheck.predict import PREDICTION_CATEGORIES, predict_source
from repro.staticcheck.facts import FunctionFacts, annotate_module, compute_module_facts

__all__ = [
    "Bail",
    "ModelOutcome",
    "WalkOutcome",
    "PREDICTION_CATEGORIES",
    "predict_source",
    "FunctionFacts",
    "annotate_module",
    "compute_module_facts",
]

"""Proven dataflow facts exported to the interpreter and the detector.

Two facts are computed, both *must-properties* (a fact is only emitted when
it is provable; absence of a fact never changes behaviour):

``noprov_return`` / ``return_scalar``
    The function provably returns a plain machine integer — an ``IntVal``
    that is not pointer-sized, carries no provenance, and has exactly the
    declared return type's ``(bytes, signed)`` shape — on **every** return
    path.  Computed as a greatest fixpoint over the call graph (optimistic
    start, demote until stable), so mutually recursive helpers like ``fib``
    stay provable.  The exact-shape requirement is what lets the
    interpreter unbox: a raw register slot stores the ``.value`` int and
    re-boxes it as ``IntVal(value, bytes, signed)`` on read, which is only
    an identity if every boxed value entering the slot already had that
    shape.  The slot fixpoint (:mod:`repro.interp.artifact`) consumes the
    per-call-site view, ``noprov_callees``: the callees of *this* function
    whose results are proven clean, with their scalar shapes — module
    functions by their proven ``return_scalar``, known intrinsics by the
    fixed shape :mod:`repro.interp.intrinsics` boxes (module definitions
    shadow intrinsics, exactly as dispatch does).  These facts are only
    *used* under a model whose provenance-propagation hook is the base
    policy (``fast_noprov``); an overridden hook may attach provenance to
    any arithmetic result, which the proof cannot see.

``safe_allocas`` / ``safe_stores``
    Stack slots that provably (a) never hold pointer-typed or pointer-sized
    data and (b) never escape the function: every use of the alloca'd
    address is a scalar LOAD, a scalar STORE *through* it (address
    position), or a derived address (GEP/PTRADD/FIELD/BITCAST) with the
    same constraints, transitively.  Shadow-clearing models may then skip
    per-store shadow bookkeeping for the rooted STOREs (``safe_stores``),
    provided the allocation purges the address range once (stack addresses
    are reused across frames).  Functions that reassign any temp are
    skipped wholesale — the alias sets are tracked per temp index.

:func:`annotate_module` attaches the facts to each ``Function`` as
``static_facts`` and bumps the mutation counters so cached predecode
artifacts keyed on the pre-annotation module are invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minic.ir import Const, Function, GlobalRef, Instr, Module, Opcode, Temp
from repro.minic.typesys import IntType, PointerType


def _is_plain_int(ctype) -> bool:
    """A non-pointer-sized machine integer type (never carries provenance
    when loaded, never round-trips a capability)."""
    return isinstance(ctype, IntType) and not ctype.is_pointer_sized


#: intrinsics whose result is always a provenance-free, non-pointer-sized
#: ``IntVal`` of a *fixed* ``(bytes, signed)`` shape, exactly as
#: ``repro.interp.intrinsics`` boxes them — lengths, comparisons, |x|,
#: character/line emitters, the seeded PRNG.
_CLEAN_INTRINSIC_SCALARS = {
    "strlen": (8, False),
    "strcmp": (4, True),
    "strncmp": (4, True),
    "memcmp": (4, True),
    "abs": (4, True),
    "labs": (8, True),
    "putchar": (4, True),
    "puts": (4, True),
    "printf": (4, True),
    "rand": (4, True),
}


@dataclass(frozen=True)
class FunctionFacts:
    """Proven facts about one function (see the module docstring)."""

    name: str
    #: every return path yields a provenance-free plain integer.
    noprov_return: bool = False
    #: proven ``(bytes, signed)`` shape of the returned ``IntVal`` when
    #: ``noprov_return`` holds (always the declared return scalar).
    return_scalar: tuple | None = None
    #: sorted ``(callee, bytes, signed)`` triples for CALLs *in this
    #: function* whose results are proven clean — the artifact layer's
    #: module-free view of the call graph proof.
    noprov_callees: tuple = ()
    #: instruction indexes of ALLOCAs proven pointer-free and non-escaping.
    safe_allocas: frozenset = frozenset()
    #: instruction indexes of STOREs rooted at a safe alloca (shadow
    #: clearing is a provable no-op for these).
    safe_stores: frozenset = frozenset()


# ---------------------------------------------------------------------------
# noprov_return — greatest fixpoint over the call graph
# ---------------------------------------------------------------------------


def _producer_index(function: Function) -> dict[int, Instr] | None:
    """temp index -> unique producing instruction, or None if any temp is
    written twice (the per-temp analyses below assume single assignment)."""
    producers: dict[int, Instr] = {}
    for instr in function.instrs:
        dest = instr.dest
        if dest is None:
            continue
        if dest.index in producers:
            return None
        producers[dest.index] = instr
    return producers


def _declared_scalar(function: Function) -> tuple | None:
    """The ``(bytes, signed)`` shape a clean return of ``function`` must
    have, or None when the return type cannot carry a plain scalar."""
    rtype = function.return_type
    if not _is_plain_int(rtype):
        return None
    return (min(rtype.bytes, 8), rtype.signed)


def _callee_scalar(callee, defined: dict, assumed: dict):
    """Proven result scalar of a CALL target, or None.  Module definitions
    shadow intrinsics, matching interpreter dispatch order."""
    if callee in defined:
        return assumed.get(callee)
    return _CLEAN_INTRINSIC_SCALARS.get(callee)


def _function_return_scalar(function: Function,
                            producers: dict[int, Instr] | None,
                            defined: dict,
                            assumed: dict) -> tuple | None:
    """The exact scalar shape every return path yields, assuming ``assumed``
    shapes for module callees — or None.  (One greatest-fixpoint step.)

    A proven shape is always the declared return scalar: RET re-boxes raw
    slots with the *slot* type and passes boxed values through unchanged, so
    the only shape a caller may rely on is one every return operand provably
    carries itself.
    """
    declared = _declared_scalar(function)
    if declared is None or producers is None:
        return None

    scalar_cache: dict[int, tuple | None] = {}

    def operand_scalar(operand, depth: int = 0) -> tuple | None:
        """The proven provenance-free ``(bytes, signed)`` shape of an
        operand's runtime value, or None (dirty / unknown / too deep)."""
        if depth > 64:
            return None
        if isinstance(operand, Const):
            ctype = operand.ctype
            if isinstance(ctype, PointerType):
                return None
            if isinstance(ctype, IntType):
                if ctype.is_pointer_sized:
                    return None
                return (min(ctype.bytes, 8), ctype.signed)
            # Untyped constants are boxed as default 8-byte signed ints.
            return (8, True)
        if isinstance(operand, GlobalRef) or not isinstance(operand, Temp):
            return None
        index = operand.index
        if index in scalar_cache:
            return scalar_cache[index]
        # Break self-referential chains pessimistically while recursing.
        scalar_cache[index] = None
        producer = producers.get(index)
        result = None if producer is None else instr_scalar(producer, depth + 1)
        scalar_cache[index] = result
        return result

    def instr_scalar(instr: Instr, depth: int) -> tuple | None:
        op = instr.op
        if op is Opcode.CMP:
            return (4, True)
        if op is Opcode.LOAD:
            if _is_plain_int(instr.ctype):
                return (min(instr.ctype.bytes, 8), instr.ctype.signed)
            return None
        if op is Opcode.BINOP:
            if (_is_plain_int(instr.ctype)
                    and operand_scalar(instr.args[0], depth) is not None
                    and operand_scalar(instr.args[1], depth) is not None):
                return (min(instr.ctype.bytes, 8), instr.ctype.signed)
            return None
        if op is Opcode.UNOP:
            return operand_scalar(instr.args[0], depth)
        if op is Opcode.INTCAST:
            # converted() only *touches* provenance when narrowing — a clean
            # (provenance-free) operand is required regardless of widths.
            if (_is_plain_int(instr.ctype)
                    and operand_scalar(instr.args[0], depth) is not None):
                return (min(instr.ctype.bytes, 8), instr.ctype.signed)
            return None
        if op is Opcode.CALL:
            return _callee_scalar(instr.attrs.get("callee"), defined, assumed)
        return None

    saw_return = False
    for instr in function.instrs:
        if instr.op is not Opcode.RET:
            continue
        saw_return = True
        if not instr.args or operand_scalar(instr.args[0]) != declared:
            return None
    return declared if saw_return else None


def _noprov_callees(function: Function, defined: dict, assumed: dict) -> tuple:
    """Sorted ``(callee, bytes, signed)`` triples covering every CALL in
    ``function`` whose result is proven clean under the final fixpoint."""
    triples = set()
    for instr in function.instrs:
        if instr.op is not Opcode.CALL:
            continue
        callee = instr.attrs.get("callee")
        scalar = _callee_scalar(callee, defined, assumed)
        if scalar is not None:
            triples.add((callee, scalar[0], scalar[1]))
    return tuple(sorted(triples))


# ---------------------------------------------------------------------------
# safe allocas — pointer-free, never-escaping stack slots
# ---------------------------------------------------------------------------

#: opcodes that derive a new address from an existing one (the derived
#: address joins the alias set and inherits the same constraints).
_DERIVE_OPS = (Opcode.GEP, Opcode.PTRADD, Opcode.FIELD, Opcode.BITCAST)


def _operand_temps(instr: Instr):
    for operand in instr.args:
        if isinstance(operand, Temp):
            yield operand.index


def _safe_allocas(function: Function,
                  producers: dict[int, Instr] | None) -> tuple[frozenset, frozenset]:
    if producers is None:
        return frozenset(), frozenset()
    instrs = function.instrs
    alloca_pcs = [pc for pc, instr in enumerate(instrs)
                  if instr.op is Opcode.ALLOCA and instr.dest is not None]
    if not alloca_pcs:
        return frozenset(), frozenset()

    safe_pcs = []
    safe_stores: set[int] = set()
    for pc in alloca_pcs:
        root = instrs[pc].dest.index
        # Grow the alias set to a fixpoint: derived addresses are aliases.
        aliases = {root}
        changed = True
        while changed:
            changed = False
            for instr in instrs:
                if (instr.op in _DERIVE_OPS and instr.dest is not None
                        and instr.dest.index not in aliases
                        and isinstance(instr.args[0], Temp)
                        and instr.args[0].index in aliases):
                    aliases.add(instr.dest.index)
                    changed = True
        stores: set[int] = set()
        safe = True
        for use_pc, instr in enumerate(instrs):
            used = [index for index in _operand_temps(instr)
                    if index in aliases]
            if not used:
                continue
            op = instr.op
            if op is Opcode.LOAD:
                # Loading *through* the alias must read a plain scalar.
                if not _is_plain_int(instr.ctype):
                    safe = False
                    break
            elif op is Opcode.STORE:
                # The alias may only appear as the address (args[0]); a
                # stored alias escapes into memory.
                value = instr.args[1] if len(instr.args) > 1 else None
                if (isinstance(value, Temp) and value.index in aliases) \
                        or not _is_plain_int(instr.ctype):
                    safe = False
                    break
                stores.add(use_pc)
            elif op in _DERIVE_OPS:
                # Alias in base position extends the alias set (already
                # fixpointed above); an alias used as a GEP *index* escapes.
                if not (isinstance(instr.args[0], Temp)
                        and instr.args[0].index in aliases
                        and len(used) == 1):
                    safe = False
                    break
            else:
                # Any other use — CALL argument, RET, PTRTOINT, CMP,
                # arithmetic, CJUMP — escapes or derives provenance.
                safe = False
                break
        if safe:
            safe_pcs.append(pc)
            safe_stores.update(stores)
    return frozenset(safe_pcs), frozenset(safe_stores)


# ---------------------------------------------------------------------------
# module-level driver
# ---------------------------------------------------------------------------


def compute_module_facts(module: Module) -> dict[str, FunctionFacts]:
    """Compute :class:`FunctionFacts` for every function in ``module``."""
    defined = module.functions
    producers = {name: _producer_index(function)
                 for name, function in defined.items()}
    # Greatest fixpoint: start optimistic (every plausible function returns
    # its declared scalar), demote functions whose returns fail under the
    # current assumptions until stable.
    assumed = {name: _declared_scalar(function)
               for name, function in defined.items()}
    for _ in range(len(defined) + 1):
        changed = False
        for name, function in defined.items():
            if assumed[name] is None:
                continue
            if _function_return_scalar(function, producers[name], defined,
                                       assumed) is None:
                assumed[name] = None
                changed = True
        if not changed:
            break
    facts = {}
    for name, function in defined.items():
        safe_allocas, safe_stores = _safe_allocas(function, producers[name])
        facts[name] = FunctionFacts(name=name,
                                    noprov_return=assumed[name] is not None,
                                    return_scalar=assumed[name],
                                    noprov_callees=_noprov_callees(
                                        function, defined, assumed),
                                    safe_allocas=safe_allocas,
                                    safe_stores=safe_stores)
    return facts


def annotate_module(module: Module,
                    facts: dict[str, FunctionFacts] | None = None) -> dict[str, FunctionFacts]:
    """Attach facts to each function (``function.static_facts``) and bump the
    mutation counters so cached predecode artifacts are regenerated."""
    if facts is None:
        facts = compute_module_facts(module)
    for name, function in module.functions.items():
        function.static_facts = facts.get(name)
        function.mutations += 1
    return facts

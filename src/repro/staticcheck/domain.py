"""Abstract domain of the static predictor.

The walk in :mod:`repro.staticcheck.absint` analyzes *closed* generated
programs: no inputs, a deterministic allocator, a deterministic generator.
Every reachable machine value is therefore a **singleton** — the abstract
domain is the concrete value lattice lifted per model, with one explicit
top element reached by *bailing*:

* an **abstract value** is a mapping ``model name -> IntVal | PtrVal``
  whose raw halves (the integer value / the 64-bit address) agree across
  models, while the metadata halves (bounds, tags, permissions, provenance,
  shadow entries) are tracked per model — exactly the split the dynamic
  machines maintain;
* **top** is not represented as a value: any situation the walk cannot
  mirror faithfully (an unsupported intrinsic, a per-model raw divergence,
  an engine-level error) raises :class:`Bail`, which widens every model
  still live straight to the ``unknown`` verdict.

That shape makes the transfer functions *precise* wherever they are defined
and *sound everywhere*: a verdict other than ``unknown`` is only emitted
when the walk mirrored the dynamic semantics instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Bail(Exception):
    """The walk left the domain it can mirror faithfully (abstract top).

    Every model that was still live when a :class:`Bail` is raised gets the
    ``unknown`` verdict; models that had already trapped keep their definite
    trap outcome (the trap happened before the walk lost precision).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class ModelOutcome:
    """The walk's final knowledge about one model.

    ``kind`` is one of:

    * ``"done"`` — the model ran the program to completion; the walk-level
      channels (exit code, checkpoints, output) are its observables;
    * ``"trap"`` — the model trapped; ``trap`` is the mirrored interpreter
      exception (with the same structured ``cause`` the oracle reads);
    * ``"bail"`` — the walk lost precision while this model was live; the
      only sound verdict is ``unknown``.
    """

    kind: str
    trap: Exception | None = None

    @property
    def trapped(self) -> bool:
        return self.kind == "trap"


@dataclass
class WalkOutcome:
    """Result of one multi-model walk over one pointer layout."""

    #: per-model outcome, for every model the walk started with.
    outcomes: dict[str, ModelOutcome] = field(default_factory=dict)
    #: shared observables of the models that ran to completion (`None` /
    #: empty when no model completed).  By the raw-identity invariant all
    #: completing models of one walk share these channels.
    exit_code: int | None = None
    checkpoints: tuple = ()
    output: bytes = b""
    #: why the walk bailed, or None when it ran to an end state.
    bail_reason: str | None = None
    #: mirrored instruction count (the dynamic budget counter).
    steps: int = 0

    def semantic_signature(self) -> tuple:
        """The oracle's semantic channel: (exit code, checkpoint stream)."""
        return (self.exit_code, self.checkpoints)

"""The multi-model abstract walk.

One :class:`Walk` executes an optimized IR module for *all* models of one
pointer layout simultaneously:

* the **raw state** — flat memory bytes, the object allocator, control
  flow, the instruction counter, checkpoints and program output — is shared
  across models, because generated programs are closed and deterministic and
  no model hook may change a raw value (models differ in *checks* and
  *metadata*, never in data);
* the **metadata planes** — each model's ``PtrVal`` bounds/tags/permissions,
  provenance on pointer-sized integers, and its shadow table — are tracked
  per model by calling the *real* model hooks (``check_access``,
  ``int_to_ptr``, ``reconcile_loaded_pointer``, ...), so the per-model trap
  decisions are the production decisions, not a re-implementation.

A model that definitely traps is *masked*: its trap is recorded and the
walk continues for the rest.  Anything the walk cannot mirror exactly
raises :class:`~repro.staticcheck.domain.Bail`, which resolves every model
still live to ``unknown`` — precision is lost, soundness is not.

The transfer functions below mirror :mod:`repro.interp.machine` /
:mod:`repro.interp.predecode` instruction for instruction (the golden tests
pin those two to be observationally identical, so the machine's simpler
scalar paths are the canonical semantics).  The instruction counter mirrors
the dynamic dispatch count exactly — one tick per dispatched handler, with
fused pairs charging both halves — so budget exhaustion is predicted at the
same instruction the dynamic machines trap on.
"""

from __future__ import annotations

from repro.common.errors import (
    InterpreterError,
    MemorySafetyError,
    UndefinedBehaviorError,
)
from repro.common.rng import DeterministicRng
from repro.interp.heap import ObjectAllocator
from repro.interp.intrinsics import INTRINSICS, ExitProgram
from repro.interp.models import get_model
from repro.interp.shadow import ShadowTable
from repro.interp.values import IntVal, Provenance, PtrVal
from repro.interp.artifact import CMP_FUNCS, INT_BINOPS
from repro.minic.ir import Const, Function, GlobalRef, Module, Opcode, Temp
from repro.minic.typesys import IntType, PointerType, Qualifiers
from repro.sim.memory import TaggedMemory

from repro.staticcheck.domain import Bail, ModelOutcome, WalkOutcome

#: same flat address space the dynamic machines use.
_ADDRESS_SPACE = 1 << 40

#: the dynamic interpreter's call-depth ceiling (machine._call).
_CALL_DEPTH_LIMIT = 400


class _AllMasked(Exception):
    """Every model trapped; the walk has nothing left to execute."""


def _is_psint(ctype) -> bool:
    return isinstance(ctype, IntType) and ctype.is_pointer_sized


class _Plane:
    """One model's metadata plane: the model instance plus its shadow table."""

    __slots__ = ("name", "model", "shadow", "uses_shadow", "clear_shadow")

    def __init__(self, name: str) -> None:
        self.name = name
        self.model = get_model(name)
        self.uses_shadow = self.model.uses_shadow
        self.clear_shadow = (self.model.uses_shadow
                             and self.model.clear_shadow_on_data_store)
        self.shadow = ShadowTable() if self.uses_shadow else None


class Walk:
    """Execute ``module`` for all ``model_names`` (one pointer layout) at once."""

    def __init__(self, module: Module, model_names, *, budget: int) -> None:
        self.module = module
        self.ctx = module.context
        if self.ctx is None:
            raise Bail("module has no type context")
        self.planes = {name: _Plane(name) for name in model_names}
        widths = {plane.model.pointer_bytes for plane in self.planes.values()}
        if len(widths) != 1:
            raise Bail("mixed pointer layouts in one walk")
        self.pointer_bytes = widths.pop()
        if self.ctx.pointer_bytes != self.pointer_bytes:
            raise Bail("module layout does not match the walk's models")
        self.live: list[str] = list(model_names)
        self.traps: dict[str, Exception] = {}
        self.memory = TaggedMemory(_ADDRESS_SPACE)
        self.allocator = ObjectAllocator()
        self.globals: dict[str, dict] = {}
        self.output = bytearray()
        self.checkpoints: list[int] = []
        self.rng = DeterministicRng(12345)
        self.budget = budget
        self.steps = 0
        self.call_depth = 0
        #: name of the function currently executing (budget trap message).
        self._fname = ""

    # ------------------------------------------------------------------
    # Masking and per-model fan-out
    # ------------------------------------------------------------------

    def _mask(self, name: str, exc: Exception) -> None:
        self.live.remove(name)
        self.traps[name] = exc

    def _per_live(self, fn) -> dict:
        """Apply ``fn(plane)`` for every live model, masking the ones it traps.

        This is the only place per-model trap exceptions are caught; a trap
        raised *outside* a ``_per_live`` fan-out is by construction shared
        (operand errors, division by zero, budget, call depth) and handled
        at the walk top as "every live model traps here".
        """
        out = {}
        for name in tuple(self.live):
            try:
                out[name] = fn(self.planes[name])
            except (MemorySafetyError, UndefinedBehaviorError,
                    InterpreterError) as exc:
                self._mask(name, exc)
        if not self.live:
            raise _AllMasked()
        return out

    def _uniform(self, value) -> dict:
        return {name: value for name in self.live}

    def _rep(self, av):
        """Any live model's entry (raw halves agree by invariant)."""
        for name in self.live:
            entry = av.get(name)
            if entry is not None:
                return entry
        raise Bail("value has no entry for any live model")

    def _shared_address(self, addr_map: dict) -> int:
        addresses = set(addr_map.values())
        if len(addresses) != 1:
            # The raw-identity invariant broke — only bail keeps us sound.
            raise Bail("per-model address divergence")
        return addresses.pop()

    # ------------------------------------------------------------------
    # Operand evaluation (mirrors predecode._reader / _ptr_reader)
    # ------------------------------------------------------------------

    def _read(self, operand, env, args):
        kind = type(operand)
        if kind is Temp:
            index = operand.index
            value = env.get(index)
            if value is None:
                raise InterpreterError(f"use of undefined temporary {operand}")
            return value
        if kind is Const:
            ctype = operand.ctype
            if isinstance(ctype, PointerType):
                if operand.value == 0:
                    return self._per_live(lambda p: p.model.null_pointer())
                as_int = IntVal(operand.value, bytes=8, signed=False)
                return self._per_live(
                    lambda p: p.model.int_to_ptr(as_int, self.allocator))
            size = ctype.size(self.ctx) if isinstance(ctype, IntType) else 8
            signed = getattr(ctype, "signed", True)
            return self._uniform(IntVal(operand.value, bytes=min(size, 8),
                                        signed=signed,
                                        pointer_sized=_is_psint(ctype)))
        if kind is GlobalRef:
            av = self.globals.get(operand.name)
            if av is None:
                raise InterpreterError(f"use of unknown global {operand.name!r}")
            return av
        raise InterpreterError(f"cannot evaluate operand {operand!r}")

    def _ptr_av(self, av) -> dict:
        """Coerce an abstract value to per-model pointers (``_ptr_reader``)."""
        def coerce(plane):
            value = av[plane.name]
            if type(value) is PtrVal:
                return value
            if type(value) is IntVal:
                return plane.model.int_to_ptr(value, self.allocator)
            raise Bail(f"expected a pointer, got {type(value).__name__}")
        return self._per_live(coerce)

    def _apply_quals(self, plane, pointer, ptr_type):
        """Qualifier appliers in predecode order: input, output, const."""
        if type(pointer) is not PtrVal or not isinstance(ptr_type, PointerType):
            return pointer
        if ptr_type.qualifiers & Qualifiers.INPUT:
            pointer = plane.model.apply_input_qualifier(pointer)
        if ptr_type.qualifiers & Qualifiers.OUTPUT:
            pointer = plane.model.apply_output_qualifier(pointer)
        if ptr_type.pointee.is_const:
            pointer = plane.model.apply_const(pointer)
        return pointer

    # ------------------------------------------------------------------
    # Shadow mirror (machine._clear_shadow_range semantics, per plane)
    # ------------------------------------------------------------------

    def _clear_shadow_range(self, plane, address: int, size: int) -> None:
        if not plane.clear_shadow or not plane.shadow.entries:
            return
        shadow = plane.shadow
        start = address - address % 8
        if size <= 256:
            entries = shadow.entries
            for key in range(start, address + size, 8):
                if key in entries:
                    del shadow[key]
            return
        for key in shadow.addresses_in_range(start, address + size):
            if not key & 7:
                del shadow[key]

    # ------------------------------------------------------------------
    # Memory transfer functions (machine._load_scalar / _store_scalar)
    # ------------------------------------------------------------------

    def _reconstruct_pointer(self, plane, raw: int, entry):
        if entry is None:
            return plane.model.load_pointer_without_metadata(raw, self.allocator)
        if isinstance(entry, PtrVal):
            return plane.model.reconcile_loaded_pointer(raw, entry, self.allocator)
        if isinstance(entry, IntVal):
            return plane.model.int_to_ptr(
                entry.with_value(raw, provenance=entry.provenance), self.allocator)
        raise InterpreterError(f"corrupt shadow entry {entry!r}")

    @staticmethod
    def _reconstruct_psint(raw: int, entry, ctype) -> IntVal:
        signed = getattr(ctype, "signed", True)
        if isinstance(entry, IntVal) and entry.unsigned == raw:
            return IntVal(raw, bytes=8, signed=signed,
                          provenance=entry.provenance, pointer_sized=True)
        if isinstance(entry, PtrVal) and entry.address == raw:
            return IntVal(raw, bytes=8, signed=signed,
                          provenance=Provenance(entry), pointer_sized=True)
        return IntVal(raw, bytes=8, signed=signed, pointer_sized=True)

    def _load(self, ctype, ptr_av) -> dict:
        if isinstance(ctype, PointerType) or _is_psint(ctype):
            width = self.pointer_bytes
            addresses = self._per_live(
                lambda p: p.model.check_access(ptr_av[p.name], width,
                                               is_write=False))
            address = self._shared_address(addresses)
            raw = int.from_bytes(self.memory.read_bytes(address, 8), "little")
            if isinstance(ctype, PointerType):
                def load_ptr(plane):
                    entry = (plane.shadow.get(address)
                             if plane.uses_shadow else None)
                    loaded = self._reconstruct_pointer(plane, raw, entry)
                    return self._apply_quals(plane, loaded, ctype)
                return self._per_live(load_ptr)

            def load_psint(plane):
                entry = plane.shadow.get(address) if plane.uses_shadow else None
                return self._reconstruct_psint(raw, entry, ctype)
            return self._per_live(load_psint)
        size = max(ctype.size(self.ctx), 1)
        addresses = self._per_live(
            lambda p: p.model.check_access(ptr_av[p.name], size, is_write=False))
        address = self._shared_address(addresses)
        signed = getattr(ctype, "signed", True)
        raw = self.memory.read_int(address, size, signed=signed)
        return self._uniform(IntVal(raw, bytes=size, signed=signed))

    def _store(self, ctype, ptr_av, value_av) -> None:
        if isinstance(ctype, PointerType) or _is_psint(ctype):
            width = self.pointer_bytes
            addresses = self._per_live(
                lambda p: p.model.check_access(ptr_av[p.name], width,
                                               is_write=True))
            address = self._shared_address(addresses)
            raws = set()
            for name in self.live:
                value = value_av[name]
                raws.add(value.address if isinstance(value, PtrVal)
                         else value.unsigned)
            if len(raws) != 1:
                raise Bail("per-model raw divergence on pointer store")
            raw = raws.pop()
            for name in self.live:
                self._clear_shadow_range(self.planes[name], address, width)
            self.memory.write_bytes(
                address,
                raw.to_bytes(8, "little", signed=False) + b"\x00" * (width - 8))
            for name in self.live:
                plane = self.planes[name]
                if plane.uses_shadow:
                    plane.shadow.set(address, value_av[name])
            return
        size = max(ctype.size(self.ctx), 1)
        addresses = self._per_live(
            lambda p: p.model.check_access(ptr_av[p.name], size, is_write=True))
        address = self._shared_address(addresses)
        for name in self.live:
            self._clear_shadow_range(self.planes[name], address, size)
        value = self._rep(value_av)
        if not isinstance(value, IntVal):
            raise Bail("pointer stored through a scalar type")
        self.memory.write_int(address, size, value.unsigned)

    # ------------------------------------------------------------------
    # Checked byte helpers shared by the intrinsic mirrors
    # ------------------------------------------------------------------

    def _check_all(self, ptr_av, length: int, *, is_write: bool) -> int:
        addresses = self._per_live(
            lambda p: p.model.check_access(ptr_av[p.name], length,
                                           is_write=is_write))
        return self._shared_address(addresses)

    def _write_checked(self, ptr_av, data: bytes) -> None:
        """machine.write_checked_bytes for all live models at once."""
        if not data:
            return
        address = self._check_all(ptr_av, len(data), is_write=True)
        for name in self.live:
            self._clear_shadow_range(self.planes[name], address, len(data))
        self.memory.write_bytes(address, data)

    def _read_cstring(self, plane, pointer, limit: int = 1 << 20) -> bytes:
        """machine._read_cstring_bytewise for one plane (exact trap point)."""
        out = bytearray()
        cursor = pointer
        check_access = plane.model.check_access
        ptr_offset = plane.model.ptr_offset
        read_small = self.memory.read_small
        for _ in range(limit):
            address = check_access(cursor, 1, is_write=False)
            byte = read_small(address, 1, False)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor = ptr_offset(cursor, 1)
        raise InterpreterError("unterminated string (exceeded 1 MiB)")

    def _cstrings(self, ptr_av) -> tuple[bytes, dict]:
        """Per-model cstring read; returns (shared bytes, per-model cursor av)."""
        texts = self._per_live(lambda p: self._read_cstring(p, ptr_av[p.name]))
        shared = set(texts.values())
        if len(shared) != 1:
            raise Bail("per-model string read divergence")
        return shared.pop(), texts

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def _setup_globals(self) -> None:
        for name, var in self.module.globals.items():
            size = var.ctype.size(self.ctx)
            alignment = max(var.ctype.alignment(self.ctx), 8)
            if var.is_string:
                obj = self.allocator.allocate_string(size, name)
            else:
                obj = self.allocator.allocate_global(size, name,
                                                     alignment=alignment)
            if var.init_bytes:
                self.memory.write_bytes(obj.base, var.init_bytes)
            self.globals[name] = self._per_live(
                lambda p, obj=obj: p.model.make_pointer(obj))

    def run(self, entry: str = "main") -> WalkOutcome:
        outcome = WalkOutcome()
        bail_reason = None
        completed = False
        try:
            self._setup_globals()
            functions = self.module.functions
            if "__global_init" in functions:
                self._call(functions["__global_init"], [])
            main = functions.get(entry)
            if main is None:
                raise InterpreterError(f"program has no function {entry!r}")
            result_av = self._call(main, [])
            result = self._rep(result_av) if result_av else None
            if isinstance(result, IntVal):
                outcome.exit_code = result.value
            elif isinstance(result, PtrVal):
                outcome.exit_code = result.address
            else:
                outcome.exit_code = 0
            completed = True
        except ExitProgram as exc:
            outcome.exit_code = exc.code
            completed = True
        except _AllMasked:
            pass
        except Bail as exc:
            bail_reason = exc.reason
        except (MemorySafetyError, UndefinedBehaviorError,
                InterpreterError) as exc:
            # Shared trap: raised outside a per-model fan-out, so every
            # model still live traps here identically.
            for name in tuple(self.live):
                self._mask(name, exc)
        except RecursionError:
            bail_reason = "python recursion limit"
        for name, trap in self.traps.items():
            outcome.outcomes[name] = ModelOutcome("trap", trap)
        for name in self.live:
            outcome.outcomes[name] = (ModelOutcome("done") if completed
                                      else ModelOutcome("bail"))
        if completed:
            outcome.checkpoints = tuple(self.checkpoints)
            outcome.output = bytes(self.output)
        outcome.bail_reason = bail_reason
        outcome.steps = self.steps
        return outcome

    def _call(self, function: Function, args: list):
        if self.call_depth > _CALL_DEPTH_LIMIT:
            raise InterpreterError(
                f"call depth limit exceeded calling {function.name}")
        self.call_depth += 1
        self.allocator.push_frame()
        caller_name = self._fname
        self._fname = function.name
        try:
            return self._exec(function, args)
        finally:
            self.allocator.pop_frame()
            self.call_depth -= 1
            self._fname = caller_name

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def _exec(self, function: Function, args: list):
        instrs = function.instrs
        labels = function.label_index()
        env: dict[int, dict] = {}
        allocas: dict[int, dict] = {}
        size = len(instrs)
        budget = self.budget
        pc = 0
        while pc < size:
            self.steps = count = self.steps + 1
            if count > budget:
                raise InterpreterError(
                    f"instruction budget of {budget} exhausted in "
                    f"{function.name}")
            instr = instrs[pc]
            op = instr.op
            next_pc = pc + 1

            if op is Opcode.LABEL or op is Opcode.NOP:
                pc = next_pc
                continue

            if op is Opcode.JUMP:
                pc = labels[instr.attrs["target"]]
                continue

            if op is Opcode.CJUMP:
                condition = self._rep(self._read(instr.args[0], env, args))
                if type(condition) is IntVal:
                    taken = condition.value != 0
                else:
                    taken = not condition.is_null
                pc = labels[instr.attrs["then"] if taken
                            else instr.attrs["else"]]
                continue

            if op is Opcode.RET:
                if instr.args:
                    return self._read(instr.args[0], env, args)
                return None

            result = None
            if op is Opcode.ALLOCA:
                result = allocas.get(pc)
                if result is None:
                    alloc_size = instr.attrs.get("size", 8)
                    alloc_type = instr.attrs.get("alloc_type")
                    alignment = max(8, alloc_type.alignment(self.ctx)
                                    if alloc_type is not None else 8)
                    obj = self.allocator.allocate_stack(
                        alloc_size, instr.attrs.get("name", ""),
                        alignment=alignment)
                    result = self._per_live(
                        lambda p, obj=obj: p.model.make_pointer(obj))
                    allocas[pc] = result

            elif op is Opcode.LOAD:
                ptr_av = self._ptr_av(self._read(instr.args[0], env, args))
                result = self._load(instr.ctype, ptr_av)

            elif op is Opcode.STORE:
                param_index = instr.attrs.get("param_index")
                if param_index is not None:
                    value_av = args[param_index]
                else:
                    value_av = self._read(instr.args[1], env, args)
                ptr_av = self._ptr_av(self._read(instr.args[0], env, args))
                self._store(instr.ctype, ptr_av, value_av)

            elif op is Opcode.GEP or op is Opcode.PTRADD:
                element_size = (instr.attrs["element_size"]
                                if op is Opcode.GEP else 1)
                ptr_av = self._ptr_av(self._read(instr.args[0], env, args))
                index = self._rep(self._read(instr.args[1], env, args))
                delta = (index.value if type(index) is IntVal
                         else index.address) * element_size
                result = self._per_live(
                    lambda p: p.model.ptr_offset(ptr_av[p.name], delta))

            elif op is Opcode.FIELD:
                field_type = (instr.ctype.pointee
                              if isinstance(instr.ctype, PointerType) else None)
                field_size = (field_type.size(self.ctx)
                              if field_type is not None else 1)
                offset = instr.attrs["offset"]
                ptr_av = self._ptr_av(self._read(instr.args[0], env, args))
                result = self._per_live(
                    lambda p: p.model.field_address(ptr_av[p.name], offset,
                                                    field_size))

            elif op is Opcode.PTRDIFF:
                a_av = self._ptr_av(self._read(instr.args[0], env, args))
                b_av = self._ptr_av(self._read(instr.args[1], env, args))
                element_size = instr.attrs.get("element_size", 1)
                result = self._per_live(
                    lambda p: IntVal(p.model.ptr_diff(a_av[p.name],
                                                      b_av[p.name],
                                                      element_size),
                                     bytes=8, signed=True))

            elif op is Opcode.PTRTOINT:
                target = instr.ctype
                width = min(target.size(self.ctx), 8)
                signed = getattr(target, "signed", True)
                pointer_sized = _is_psint(target)
                ptr_av = self._ptr_av(self._read(instr.args[0], env, args))
                result = self._per_live(
                    lambda p: p.model.ptr_to_int(ptr_av[p.name], bytes=width,
                                                 signed=signed,
                                                 pointer_sized=pointer_sized))

            elif op is Opcode.INTTOPTR:
                value_av = self._read(instr.args[0], env, args)

                def to_ptr(plane, value_av=value_av, ctype=instr.ctype):
                    value = value_av[plane.name]
                    pointer = (value if type(value) is PtrVal
                               else plane.model.int_to_ptr(value,
                                                           self.allocator))
                    return self._apply_quals(plane, pointer, ctype)
                result = self._per_live(to_ptr)

            elif op is Opcode.BITCAST:
                value_av = self._read(instr.args[0], env, args)
                deconst = bool(instr.attrs.get("deconst"))

                def bitcast(plane, value_av=value_av, deconst=deconst,
                            ctype=instr.ctype):
                    value = value_av[plane.name]
                    if type(value) is PtrVal:
                        if deconst:
                            value = plane.model.deconst(value)
                        value = self._apply_quals(plane, value, ctype)
                    return value
                result = self._per_live(bitcast)

            elif op is Opcode.INTCAST:
                target = instr.ctype
                width = min(target.size(self.ctx), 8)
                signed = getattr(target, "signed", True)
                pointer_sized = _is_psint(target)
                value_av = self._read(instr.args[0], env, args)

                def intcast(plane, value_av=value_av, width=width,
                            signed=signed, pointer_sized=pointer_sized):
                    value = value_av[plane.name]
                    if type(value) is PtrVal:
                        return plane.model.ptr_to_int(
                            value, bytes=width, signed=signed,
                            pointer_sized=pointer_sized)
                    if (value.bytes == width and value.signed == signed
                            and value.pointer_sized == pointer_sized):
                        return value
                    return value.converted(bytes=width, signed=signed,
                                           pointer_sized=pointer_sized)
                result = self._per_live(intcast)

            elif op is Opcode.BINOP:
                result = self._binop(instr, env, args)

            elif op is Opcode.UNOP:
                negate = instr.attrs["operator"] == "neg"
                value = self._rep(self._read(instr.args[0], env, args))
                if type(value) is not IntVal:
                    raise InterpreterError("unary arithmetic on a pointer value")
                result = self._uniform(
                    value.with_value(-value.value if negate else ~value.value,
                                     provenance=None))

            elif op is Opcode.CMP:
                result = self._cmp(instr, env, args)

            elif op is Opcode.CALL:
                result = self._do_call(instr, env, args)

            else:
                raise InterpreterError(f"unsupported IR opcode {op}")

            if instr.dest is not None and result is not None:
                env[instr.dest.index] = result
            pc = next_pc
        return None

    # ------------------------------------------------------------------
    # Arithmetic / comparison transfer functions
    # ------------------------------------------------------------------

    def _binop(self, instr, env, args) -> dict:
        operator = instr.attrs["operator"]
        fast_op = INT_BINOPS.get(operator)
        is_division = operator in ("/", "%")
        if fast_op is None and not is_division:
            raise InterpreterError(f"unknown binary operator {operator!r}")
        target = instr.ctype
        width = min(target.size(self.ctx), 8) if target is not None else 8
        signed = getattr(target, "signed", True)
        pointer_sized = _is_psint(target)
        left_av = self._read(instr.args[0], env, args)
        right_av = self._read(instr.args[1], env, args)
        is_div_op = operator == "/"

        def binop(plane):
            left = left_av[plane.name]
            right = right_av[plane.name]
            if type(left) is not IntVal:
                left = plane.model.ptr_to_int(left, bytes=8, signed=False,
                                              pointer_sized=True)
            if type(right) is not IntVal:
                right = plane.model.ptr_to_int(right, bytes=8, signed=False,
                                               pointer_sized=True)
            a = left.value
            b = right.value
            if is_division:
                if b == 0:
                    raise UndefinedBehaviorError("integer division by zero")
                quotient = abs(a) // abs(b)
                signed_quotient = (quotient if (a >= 0) == (b >= 0)
                                   else -quotient)
                raw = (signed_quotient if is_div_op
                       else a - signed_quotient * b)
            else:
                raw = fast_op(a, b)
            provenance = plane.model.propagate_provenance(left, right, raw)
            return IntVal(raw, bytes=width, signed=signed,
                          provenance=provenance, pointer_sized=pointer_sized)
        return self._per_live(binop)

    def _cmp(self, instr, env, args) -> dict:
        operator = instr.attrs["operator"]
        compare = CMP_FUNCS.get(operator)
        if compare is None:
            raise Bail(f"unknown comparison operator {operator!r}")
        left_av = self._read(instr.args[0], env, args)
        right_av = self._read(instr.args[1], env, args)

        def cmp(plane):
            left = left_av[plane.name]
            right = right_av[plane.name]
            left_is_ptr = type(left) is PtrVal
            if left_is_ptr and type(right) is PtrVal:
                result = plane.model.ptr_compare(left, right, operator)
            else:
                result = compare(
                    left.address if left_is_ptr else left.value,
                    right.address if type(right) is PtrVal else right.value)
            return IntVal(1 if result else 0, bytes=4)
        results = self._per_live(cmp)
        raws = {value.value for value in results.values()}
        if len(raws) != 1:
            raise Bail("per-model comparison divergence")
        return results

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _do_call(self, instr, env, args):
        callee = instr.attrs["callee"]
        function = self.module.functions.get(callee)
        arg_avs = [self._read(arg, env, args) for arg in instr.args]
        if function is not None and function.instrs:
            params = function.params
            coerced = []
            for index, av in enumerate(arg_avs):
                param_type = (params[index][1] if index < len(params)
                              else None)
                if isinstance(param_type, PointerType):
                    def coerce(plane, av=av, param_type=param_type):
                        value = av[plane.name]
                        if type(value) is PtrVal:
                            return self._apply_quals(plane, value, param_type)
                        if type(value) is IntVal:
                            return plane.model.int_to_ptr(value,
                                                          self.allocator)
                        return value
                    coerced.append(self._per_live(coerce))
                else:
                    coerced.append(av)
            return self._call(function, coerced)
        mirror = _INTRINSIC_MIRRORS.get(callee)
        if mirror is None:
            if callee in INTRINSICS:
                raise Bail(f"unsupported intrinsic {callee!r}")
            raise InterpreterError(f"call to unknown function {callee!r}")
        return mirror(self, arg_avs, instr)


# ---------------------------------------------------------------------------
# Intrinsic mirrors (repro.interp.intrinsics, multi-model)
# ---------------------------------------------------------------------------


def _as_int(value) -> int:
    if isinstance(value, IntVal):
        return value.value
    if isinstance(value, PtrVal):
        return value.address
    raise InterpreterError(f"expected an integer argument, got {value!r}")


def _as_size(value) -> int:
    if isinstance(value, IntVal):
        return value.unsigned
    if isinstance(value, PtrVal):
        return value.address
    raise InterpreterError(f"expected a size argument, got {value!r}")


def _arg_ptr(walk: Walk, av) -> dict:
    return walk._ptr_av(av)


def _i_malloc(walk: Walk, args, instr):
    size = _as_size(walk._rep(args[0]))
    obj = walk.allocator.allocate_heap(
        size, alignment=max(16, walk.planes[walk.live[0]].model.pointer_align))
    return walk._per_live(lambda p: p.model.make_pointer(obj))


def _i_calloc(walk: Walk, args, instr):
    count = _as_size(walk._rep(args[0]))
    size = _as_size(walk._rep(args[1]))
    obj = walk.allocator.allocate_heap(
        count * size,
        alignment=max(16, walk.planes[walk.live[0]].model.pointer_align))
    return walk._per_live(lambda p: p.model.make_pointer(obj))


def _i_free(walk: Walk, args, instr):
    ptr_av = _arg_ptr(walk, args[0])
    if walk._rep(ptr_av).is_null:
        return None

    def resolve(plane):
        pointer = ptr_av[plane.name]
        obj = pointer.obj or walk.allocator.find(pointer.address)
        if obj is None or obj.kind != "heap":
            raise MemorySafetyError(
                f"free() of a non-heap pointer at {pointer.address:#x}",
                address=pointer.address, cause="badfree")
        return obj
    objs = walk._per_live(resolve)
    distinct = {id(obj) for obj in objs.values()}
    if len(distinct) != 1:
        raise Bail("per-model free target divergence")
    # allocator.free raises InterpreterError on a double free — shared.
    walk.allocator.free(next(iter(objs.values())))
    return None


def _i_memcpy(walk: Walk, args, instr):
    dst_av = _arg_ptr(walk, args[0])
    src_av = _arg_ptr(walk, args[1])
    length = _as_size(walk._rep(args[2]))
    if length == 0:
        return dst_av
    src_addresses = walk._per_live(
        lambda p: p.model.check_access(src_av[p.name], length, is_write=False))
    src_address = walk._shared_address(src_addresses)
    dst_addresses = walk._per_live(
        lambda p: p.model.check_access(dst_av[p.name], length, is_write=True))
    dst_address = walk._shared_address(dst_addresses)
    data = walk.memory.read_bytes(src_address, length)
    for name in walk.live:
        walk._clear_shadow_range(walk.planes[name], dst_address, length)
    walk.memory.write_bytes(dst_address, data)
    delta = dst_address - src_address
    for name in walk.live:
        plane = walk.planes[name]
        if not plane.uses_shadow or not plane.shadow.entries:
            continue
        shadow = plane.shadow
        moved = shadow.entries_in_range(src_address, src_address + length)
        moved_keys = {key + delta for key, _ in moved}
        for key in shadow.addresses_in_range(dst_address,
                                             dst_address + length):
            if key not in moved_keys:
                del shadow[key]
        for key, value in moved:
            shadow.set(key + delta, value)
    return dst_av


def _i_memset(walk: Walk, args, instr):
    dst_av = _arg_ptr(walk, args[0])
    byte = _as_int(walk._rep(args[1])) & 0xFF
    length = _as_size(walk._rep(args[2]))
    walk._write_checked(dst_av, bytes([byte]) * length)
    return dst_av


def _i_memcmp(walk: Walk, args, instr):
    length = _as_size(walk._rep(args[2]))
    a_av = _arg_ptr(walk, args[0])
    b_av = _arg_ptr(walk, args[1])
    if length == 0:
        a = b = b""
    else:
        a_address = walk._check_all(a_av, length, is_write=False)
        a = walk.memory.read_bytes(a_address, length)
        b_address = walk._check_all(b_av, length, is_write=False)
        b = walk.memory.read_bytes(b_address, length)
    if a == b:
        return walk._uniform(IntVal(0, bytes=4))
    return walk._uniform(IntVal(-1 if a < b else 1, bytes=4))


def _i_strlen(walk: Walk, args, instr):
    text, _ = walk._cstrings(_arg_ptr(walk, args[0]))
    return walk._uniform(IntVal(len(text), bytes=8, signed=False))


def _i_strcmp(walk: Walk, args, instr):
    a, _ = walk._cstrings(_arg_ptr(walk, args[0]))
    b, _ = walk._cstrings(_arg_ptr(walk, args[1]))
    if a == b:
        return walk._uniform(IntVal(0, bytes=4))
    return walk._uniform(IntVal(-1 if a < b else 1, bytes=4))


def _i_strncmp(walk: Walk, args, instr):
    limit = _as_size(walk._rep(args[2]))
    a, _ = walk._cstrings(_arg_ptr(walk, args[0]))
    b, _ = walk._cstrings(_arg_ptr(walk, args[1]))
    a, b = a[:limit], b[:limit]
    if a == b:
        return walk._uniform(IntVal(0, bytes=4))
    return walk._uniform(IntVal(-1 if a < b else 1, bytes=4))


def _i_strcpy(walk: Walk, args, instr):
    dst_av = _arg_ptr(walk, args[0])
    text, _ = walk._cstrings(_arg_ptr(walk, args[1]))
    walk._write_checked(dst_av, text + b"\x00")
    return dst_av


def _i_strncpy(walk: Walk, args, instr):
    dst_av = _arg_ptr(walk, args[0])
    limit = _as_size(walk._rep(args[2]))
    text, _ = walk._cstrings(_arg_ptr(walk, args[1]))
    text = text[:limit]
    padded = text + b"\x00" * (limit - len(text))
    walk._write_checked(dst_av, padded[:limit])
    return dst_av


def _i_strchr(walk: Walk, args, instr):
    ptr_av = _arg_ptr(walk, args[0])
    needle = _as_int(walk._rep(args[1])) & 0xFF
    text, _ = walk._cstrings(ptr_av)
    index = (text + b"\x00").find(bytes([needle]))
    if index < 0:
        return walk._per_live(lambda p: p.model.null_pointer())
    return walk._per_live(lambda p: p.model.ptr_offset(ptr_av[p.name], index))


def _i_strcat(walk: Walk, args, instr):
    dst_av = _arg_ptr(walk, args[0])
    existing, _ = walk._cstrings(dst_av)
    suffix, _ = walk._cstrings(_arg_ptr(walk, args[1]))
    tail_av = walk._per_live(
        lambda p: p.model.ptr_offset(dst_av[p.name], len(existing)))
    walk._write_checked(tail_av, suffix + b"\x00")
    return dst_av


class _FormatBail:
    """Duck-typed machine handed to intrinsics._format: any model-dependent
    path (a ``%s`` string read, an int-to-pointer coercion) bails the walk
    instead of silently diverging from the per-model dynamic semantics."""

    def read_cstring(self, pointer):
        raise Bail("printf %s conversion")

    def __getattr__(self, name):
        raise Bail(f"printf conversion needs machine.{name}")


def _i_printf(walk: Walk, args, instr):
    from repro.interp.intrinsics import _format
    template, _ = walk._cstrings(_arg_ptr(walk, args[0]))
    rep_args = [walk._rep(av) for av in args[1:]]
    text = _format(_FormatBail(), template, rep_args)
    walk.output.extend(text)
    return walk._uniform(IntVal(len(text), bytes=4))


def _i_putchar(walk: Walk, args, instr):
    value = _as_int(walk._rep(args[0]))
    walk.output.extend(bytes([value & 0xFF]))
    return walk._uniform(IntVal(value, bytes=4))


def _i_puts(walk: Walk, args, instr):
    text, _ = walk._cstrings(_arg_ptr(walk, args[0]))
    walk.output.extend(text + b"\n")
    return walk._uniform(IntVal(0, bytes=4))


def _i_abs(walk: Walk, args, instr):
    return walk._uniform(IntVal(abs(_as_int(walk._rep(args[0]))), bytes=4))


def _i_labs(walk: Walk, args, instr):
    return walk._uniform(IntVal(abs(_as_int(walk._rep(args[0]))), bytes=8))


def _i_exit(walk: Walk, args, instr):
    raise ExitProgram(_as_int(walk._rep(args[0])) if args else 0)


def _i_abort(walk: Walk, args, instr):
    raise ExitProgram(134)


def _i_assert(walk: Walk, args, instr):
    if not _as_int(walk._rep(args[0])):
        raise UndefinedBehaviorError("assertion failed in interpreted program")
    return None


def _i_rand(walk: Walk, args, instr):
    return walk._uniform(IntVal(walk.rng.randint(0, 0x7FFFFFFF), bytes=4))


def _i_srand(walk: Walk, args, instr):
    seed = _as_int(walk._rep(args[0]))
    walk.rng = DeterministicRng(seed or 1)
    return None


def _i_mini_output_int(walk: Walk, args, instr):
    walk.output.extend(str(_as_int(walk._rep(args[0]))).encode() + b"\n")
    return None


def _i_mini_checkpoint(walk: Walk, args, instr):
    walk.checkpoints.append(_as_int(walk._rep(args[0])))
    return None


_INTRINSIC_MIRRORS = {
    "malloc": _i_malloc,
    "calloc": _i_calloc,
    "free": _i_free,
    "memcpy": _i_memcpy,
    "memmove": _i_memcpy,
    "memset": _i_memset,
    "memcmp": _i_memcmp,
    "strlen": _i_strlen,
    "strcmp": _i_strcmp,
    "strncmp": _i_strncmp,
    "strcpy": _i_strcpy,
    "strncpy": _i_strncpy,
    "strchr": _i_strchr,
    "strcat": _i_strcat,
    "printf": _i_printf,
    "putchar": _i_putchar,
    "puts": _i_puts,
    "abs": _i_abs,
    "labs": _i_labs,
    "exit": _i_exit,
    "abort": _i_abort,
    "assert": _i_assert,
    "rand": _i_rand,
    "srand": _i_srand,
    "mini_output_int": _i_mini_output_int,
    "mini_checkpoint": _i_mini_checkpoint,
}

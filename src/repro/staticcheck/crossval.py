"""Static <-> dynamic cross-validation: matrix, metrics and record annotation.

The cross-validation contract: for every (program, model) cell the dynamic
oracle classified, the static predictor emits a verdict from
:data:`~repro.staticcheck.predict.PREDICTION_CATEGORIES`, and the pair is
tallied into a confusion matrix (rows: static prediction, columns: dynamic
oracle).  Two notions of correctness matter:

* **match** — the prediction equals the dynamic cell, with the single
  deliberate alias ``corrupt-possible`` ~ ``corrupt`` (the static taxonomy
  hedges the name, not the content);
* **soundness** — a dynamically trapping cell (``trap:*``) must never be
  predicted as definitely-safe (``agree`` / ``benign`` / ``escape``).
  Conservative answers (the same or another trap, ``corrupt-possible``,
  ``unknown``, ``budget``) keep the predictor sound even when imprecise.

Predictions are a pure function of ``(corpus seed, index, models, budget)``
— they are *recomputed* at artifact-build time rather than journaled, so
the sharded service, the multi-host merge and the serial sweep all produce
byte-identical annotations and matrices without any journal-format change.
Cells the service quarantined (``error:engine`` / ``error:timeout``) are
infrastructure outcomes with no dynamic verdict to validate against; they
appear in the matrix but are excluded from the match and soundness metrics.
"""

from __future__ import annotations

import time

from collections import Counter
from dataclasses import dataclass, field

from repro.difftest.generator import generate_program
from repro.staticcheck.predict import PREDICTION_CATEGORIES, predict_source
from repro.telemetry import metrics

#: canonical artifact name (mirrors output.MATRIX_NAME / CORPUS_NAME).
CROSSVAL_NAME = "staticcheck_crossval.txt"

#: predictions that assert the model definitely does not trap.
SAFE_PREDICTIONS = ("agree", "benign", "escape")

#: dynamic cells with no program-level verdict to validate against.
QUARANTINE_CELLS = ("error:engine", "error:timeout")


def prediction_matches(predicted: str, dynamic: str) -> bool:
    """Exact match, plus the deliberate corrupt-possible ~ corrupt alias."""
    return predicted == dynamic or (predicted == "corrupt-possible"
                                    and dynamic == "corrupt")


def is_soundness_violation(predicted: str, dynamic: str) -> bool:
    """A dynamically trapping cell predicted as definitely safe."""
    return dynamic.startswith("trap:") and predicted in SAFE_PREDICTIONS


def annotate_records(records, *, seed: int, models, budget: int,
                     say=None) -> None:
    """Attach ``static_prediction`` to every cell record, in place.

    Programs are regenerated from ``(seed, index)`` exactly like the
    reducer does — records carry no sources by design.
    """
    models = tuple(models)
    hist = metrics.histogram("stage.crossval")
    predicted_counter = metrics.counter("crossval.programs")
    for position, record in enumerate(records):
        program = generate_program(seed, record["index"])
        begin = time.perf_counter()
        record["static_prediction"] = predict_source(
            program.source, models=models, budget=budget)
        hist.observe(time.perf_counter() - begin)
        predicted_counter.inc()
        if say is not None and (position + 1) % 100 == 0:
            say(f"  statically predicted {position + 1}/{len(records)} programs")


@dataclass
class CrossvalSummary:
    """Everything the rendered matrix and the CI floor checks need."""

    #: (predicted, dynamic) -> count over all validated cells.
    confusion: Counter = field(default_factory=Counter)
    #: model -> (matched cells, validated cells).
    per_model: dict = field(default_factory=dict)
    #: programs whose record carried a static prediction.
    programs: int = 0
    #: cells excluded from metrics (service quarantine).
    quarantined: int = 0
    #: [(index, model, predicted, dynamic)] soundness violations.
    violations: list = field(default_factory=list)

    @property
    def cells(self) -> int:
        return sum(self.confusion.values())

    @property
    def matched(self) -> int:
        return sum(count for (predicted, dynamic), count
                   in self.confusion.items()
                   if prediction_matches(predicted, dynamic))

    def trap_metrics(self) -> dict:
        """Per-``trap:*`` category (plus the ``trap:*`` aggregate):
        ``{category: (predicted, dynamic, correct)}``."""
        predicted_totals: Counter = Counter()
        dynamic_totals: Counter = Counter()
        correct: Counter = Counter()
        for (predicted, dynamic), count in self.confusion.items():
            if predicted.startswith("trap:"):
                predicted_totals[predicted] += count
                predicted_totals["trap:*"] += count
            if dynamic.startswith("trap:"):
                dynamic_totals[dynamic] += count
                dynamic_totals["trap:*"] += count
            if predicted == dynamic and predicted.startswith("trap:"):
                correct[predicted] += count
                correct["trap:*"] += count
        return {category: (predicted_totals[category],
                           dynamic_totals[category], correct[category])
                for category in sorted(set(predicted_totals)
                                       | set(dynamic_totals))}

    def trap_precision(self) -> float | None:
        """Aggregate ``trap:*`` precision, or None with no trap predictions."""
        predicted, _, correct = self.trap_metrics().get("trap:*", (0, 0, 0))
        if not predicted:
            return None
        return correct / predicted

    def trap_recall(self) -> float | None:
        _, dynamic, correct = self.trap_metrics().get("trap:*", (0, 0, 0))
        if not dynamic:
            return None
        return correct / dynamic


def summarize_crossval(records) -> CrossvalSummary:
    """Tally annotated records (``classification`` x ``static_prediction``)."""
    summary = CrossvalSummary()
    for record in records:
        static_prediction = record.get("static_prediction")
        if static_prediction is None:
            continue
        summary.programs += 1
        for model, dynamic in record["classification"].items():
            predicted = static_prediction.get(model, "unknown")
            if dynamic in QUARANTINE_CELLS:
                summary.quarantined += 1
                continue
            summary.confusion[(predicted, dynamic)] += 1
            matched, total = summary.per_model.get(model, (0, 0))
            summary.per_model[model] = (
                matched + (1 if prediction_matches(predicted, dynamic) else 0),
                total + 1)
            if is_soundness_violation(predicted, dynamic):
                summary.violations.append(
                    (record["index"], model, predicted, dynamic))
    return summary


def _category_order(categories) -> list[str]:
    """Canonical-then-alphabetical order for matrix axes (deterministic for
    any category set, including future taxonomy growth)."""
    canonical = {name: position
                 for position, name in enumerate(PREDICTION_CATEGORIES)}
    extra = len(canonical)
    return sorted(categories,
                  key=lambda name: (canonical.get(name, extra), name))


def _percent(numerator: int, denominator: int) -> str:
    if not denominator:
        return "n/a"
    return f"{100.0 * numerator / denominator:.2f}%"


def format_crossval(summary: CrossvalSummary, *, meta: dict) -> str:
    """Render the deterministic ``staticcheck_crossval.txt`` artifact."""
    lines = ["# staticcheck cross-validation — static predictions vs "
             "dynamic oracle"]
    lines.append("# " + " ".join(
        f"{key}={','.join(map(str, value)) if isinstance(value, (list, tuple)) else value}"
        for key, value in sorted(meta.items())))
    lines.append(f"# programs={summary.programs} cells={summary.cells} "
                 f"matched={summary.matched} "
                 f"({_percent(summary.matched, summary.cells)})"
                 + (f" quarantined={summary.quarantined}"
                    if summary.quarantined else ""))
    lines.append(f"# soundness violations (trap predicted safe): "
                 f"{len(summary.violations)}")
    for index, model, predicted, dynamic in summary.violations[:20]:
        lines.append(f"#   program {index} model {model}: "
                     f"predicted {predicted}, dynamic {dynamic}")
    lines.append("")

    rows = _category_order({predicted for predicted, _ in summary.confusion})
    columns = _category_order({dynamic for _, dynamic in summary.confusion})
    label_width = max([len("predicted \\ dynamic")]
                      + [len(row) for row in rows])
    widths = [max(len(column), 5) for column in columns]
    lines.append("confusion matrix (rows: static prediction; columns: "
                 "dynamic oracle)")
    header = "predicted \\ dynamic".ljust(label_width)
    for column, width in zip(columns, widths):
        header += "  " + column.rjust(width)
    lines.append(header)
    for row in rows:
        text = row.ljust(label_width)
        for column, width in zip(columns, widths):
            count = summary.confusion.get((row, column), 0)
            text += "  " + (str(count) if count else ".").rjust(width)
        lines.append(text)
    lines.append("")

    lines.append("per-model agreement")
    for model in sorted(summary.per_model):
        matched, total = summary.per_model[model]
        lines.append(f"  {model:<12} {matched}/{total} "
                     f"({_percent(matched, total)})")
    lines.append("")

    lines.append("trap precision/recall")
    lines.append(f"  {'category':<18} {'predicted':>9} {'dynamic':>9} "
                 f"{'correct':>9} {'precision':>9} {'recall':>9}")
    for category, (predicted, dynamic, correct) \
            in summary.trap_metrics().items():
        lines.append(f"  {category:<18} {predicted:>9} {dynamic:>9} "
                     f"{correct:>9} {_percent(correct, predicted):>9} "
                     f"{_percent(correct, dynamic):>9}")
    return "\n".join(lines)

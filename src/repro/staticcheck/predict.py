"""Per-program static verdict assembly in the dynamic oracle's taxonomy.

:func:`predict_source` compiles a mini-C program exactly like the
differential runner (parse once, lower per pointer layout, optimize), runs
one multi-model :class:`~repro.staticcheck.absint.Walk` per layout, and
assembles per-model verdicts with the same decision tree the dynamic
oracle's ``_cell`` uses — with two deliberate differences:

* a dynamic ``corrupt`` cell is predicted as ``corrupt-possible``: the walk
  proves the semantic channels diverge, but the category name keeps the
  static caveat visible in cross-validation reports (see
  ``docs/staticcheck.md`` for what it does and does not promise);
* ``unknown`` is the explicit abstract-top verdict — emitted whenever the
  walk bailed while the model (or the baseline it is judged against) was
  still live.  ``unknown`` is never wrong, only imprecise.

The pdp11 baseline's layout is always walked, even when the baseline is not
among the requested models, because every non-baseline verdict is relative
to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CompilationError
from repro.difftest.oracle import BASELINE, CATEGORIES, trap_cause
from repro.difftest.runner import DEFAULT_BUDGET
from repro.interp.models import PAPER_MODEL_ORDER, get_model
from repro.minic.irgen import compile_unit
from repro.minic.optimizer import optimize_module
from repro.minic.parser import parse

from repro.staticcheck.absint import Walk
from repro.staticcheck.domain import Bail, ModelOutcome, WalkOutcome

#: every string :func:`predict_source` can emit.  The dynamic taxonomy minus
#: the cells a static analysis can never produce (`corrupt` becomes the
#: hedged `corrupt-possible`; the service-level `error:engine` /
#: `error:timeout` quarantine cells are infrastructure outcomes), plus the
#: abstract-top verdict `unknown`.
PREDICTION_CATEGORIES = tuple(
    "corrupt-possible" if category == "corrupt" else category
    for category in CATEGORIES
    if category not in ("error:engine", "error:timeout")
) + ("unknown",)


@dataclass
class PredictionReport:
    """A prediction plus the diagnostics cross-validation triage wants."""

    #: model name -> category from :data:`PREDICTION_CATEGORIES`.
    verdicts: dict[str, str] = field(default_factory=dict)
    #: (pointer_bytes, pointer_align) -> why that layout's walk bailed
    #: (only layouts that bailed appear).
    bail_reasons: dict[tuple[int, int], str] = field(default_factory=dict)
    #: (pointer_bytes, pointer_align) -> mirrored instruction count.
    steps: dict[tuple[int, int], int] = field(default_factory=dict)


def _verdict(outcome: ModelOutcome, walk: WalkOutcome,
             base: ModelOutcome | None, base_walk: WalkOutcome | None, *,
             is_baseline: bool) -> str:
    """Mirror of ``oracle._cell`` over walk outcomes, with bail -> unknown."""
    if outcome.kind == "bail":
        return "unknown"
    if outcome.trapped:
        if is_baseline:
            return "baseline-trap"
        cause = trap_cause(outcome.trap)
        if cause == "budget":
            return "budget"
        if cause == "interp":
            return "error:interp"
        if base is not None and base.trapped and trap_cause(base.trap) == cause:
            return "agree-trap"
        # Note: when the baseline *bailed* we cannot rule out `agree-trap`,
        # but the trap itself is proven — report the definite half.
        return f"trap:{cause}"
    if is_baseline or base is None:
        return "agree"
    if base.kind == "bail":
        return "unknown"
    if base.trapped:
        return "escape"
    if walk.semantic_signature() != base_walk.semantic_signature():
        return "corrupt-possible"
    if walk.output != base_walk.output:
        return "benign"
    return "agree"


def predict_source_report(source: str, *,
                          models: tuple[str, ...] | None = None,
                          budget: int = DEFAULT_BUDGET) -> PredictionReport:
    """Predict every requested model's oracle cell for ``source``."""
    names = tuple(models or PAPER_MODEL_ORDER)
    unknown_names = [m for m in names if m not in PAPER_MODEL_ORDER]
    if unknown_names:
        raise ValueError(
            f"unknown models: {unknown_names}; known: {PAPER_MODEL_ORDER}")
    report = PredictionReport()
    try:
        unit, _ = parse(source)
    except CompilationError:
        report.verdicts = {name: "error:compile" for name in names}
        return report

    base_model = get_model(BASELINE)
    base_layout = (base_model.pointer_bytes, base_model.pointer_align)
    layouts: dict[tuple[int, int], list[str]] = {}
    for name in names:
        model = get_model(name)
        layouts.setdefault((model.pointer_bytes, model.pointer_align),
                           []).append(name)
    # The baseline is always walked: every other verdict is relative to it.
    baseline_group = layouts.setdefault(base_layout, [])
    if BASELINE not in baseline_group:
        baseline_group.append(BASELINE)
    # Walk the baseline's layout first so its outcome is available when the
    # other layouts' verdicts are assembled.
    ordered = sorted(layouts, key=lambda layout: layout != base_layout)

    line_count = source.count("\n") + 1
    walks: dict[tuple[int, int], WalkOutcome | None] = {}
    compile_failed: set[tuple[int, int]] = set()
    for layout in ordered:
        try:
            module = compile_unit(unit, pointer_bytes=layout[0],
                                  pointer_align=layout[1],
                                  source_name="<staticcheck>",
                                  source_line_count=line_count)
            optimize_module(module)
        except CompilationError:
            compile_failed.add(layout)
            walks[layout] = None
            continue
        try:
            outcome = Walk(module, tuple(layouts[layout]),
                           budget=budget).run()
        except Bail as exc:
            outcome = WalkOutcome(
                outcomes={name: ModelOutcome("bail")
                          for name in layouts[layout]},
                bail_reason=exc.reason)
        walks[layout] = outcome
        if outcome.bail_reason is not None:
            report.bail_reasons[layout] = outcome.bail_reason
        report.steps[layout] = outcome.steps

    base_walk = walks.get(base_layout)
    base_outcome = (base_walk.outcomes.get(BASELINE)
                    if base_walk is not None else None)
    for layout, layout_names in layouts.items():
        walk = walks[layout]
        for name in layout_names:
            if name not in names:
                continue
            if layout in compile_failed:
                report.verdicts[name] = "error:compile"
                continue
            report.verdicts[name] = _verdict(
                walk.outcomes[name], walk, base_outcome, base_walk,
                is_baseline=name == BASELINE)
    return report


def predict_source(source: str, *, models: tuple[str, ...] | None = None,
                   budget: int = DEFAULT_BUDGET) -> dict[str, str]:
    """Per-model predicted oracle cells for ``source`` (thin wrapper around
    :func:`predict_source_report` for callers that only want the verdicts)."""
    return predict_source_report(source, models=models, budget=budget).verdicts

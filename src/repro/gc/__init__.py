"""Capability-aware garbage collection (paper §4.2).

"We have implemented a relocating generational garbage collector for CHERIv3
that uses the tagged memory to differentiate between capabilities and other
data."  This package reproduces that collector against the abstract machine:
because every pointer stored to memory leaves a tagged shadow entry, the
collector can identify *exactly* which words are pointers — no conservative
scanning, no integer-hoarded garbage (§3.6) — and can therefore relocate
objects and rewrite the capabilities that refer to them.
"""

from repro.gc.collector import CapabilityGarbageCollector, CollectionStats

__all__ = ["CapabilityGarbageCollector", "CollectionStats"]

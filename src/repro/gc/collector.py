"""A precise, relocating garbage collector built on capability tags.

The collector operates on a quiescent :class:`~repro.interp.machine.AbstractMachine`
(between program phases, or after a run): the caller supplies the root
pointers (the machine's globals are always included), and the collector

1. **traces** the object graph by scanning each reachable object's memory for
   tagged shadow entries — the interpreter's stand-in for CHERI's tagged
   memory — so only genuine capabilities are followed (§3.6: accurate
   collection is impossible when integers can hide pointers; tags make it
   possible);
2. **sweeps** unreachable heap objects, returning their storage to the
   allocator;
3. optionally **relocates** surviving heap objects to fresh addresses
   (a compacting/generational step): the object bytes and their shadow
   entries move, every capability that referred to the old location — in
   globals, in roots, and inside other objects — is rewritten, and the old
   object records a forwarding address.

Precision and relocation are exactly the two properties the paper argues the
PDP-11 model cannot offer and the CHERI model can.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import InterpreterError
from repro.interp.heap import HeapObject
from repro.interp.machine import AbstractMachine
from repro.interp.values import IntVal, PtrVal


@dataclass
class CollectionStats:
    """Summary of one collection cycle."""

    live_objects: int = 0
    swept_objects: int = 0
    swept_bytes: int = 0
    relocated_objects: int = 0
    relocated_bytes: int = 0
    rewritten_references: int = 0
    roots: int = 0


class CapabilityGarbageCollector:
    """Precise tracing collector over the abstract machine's heap."""

    def __init__(self, machine: AbstractMachine) -> None:
        if not machine.model.uses_shadow:
            raise InterpreterError(
                "precise collection needs a memory model with tagged pointer metadata "
                f"(model {machine.model.name!r} reconstructs pointers from raw integers)"
            )
        self.machine = machine

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def _pointer_entries_in(self, obj: HeapObject) -> list[tuple[int, PtrVal]]:
        """(address, pointer) pairs for every tagged pointer stored in ``obj``.

        The shadow table's per-page index makes this O(entries within the
        object) instead of O(total shadow entries) per traced object.
        """
        entries = []
        for address, value in self.machine.shadow.entries_in_range(obj.base, obj.top):
            pointer = self._as_pointer(value)
            if pointer is not None:
                entries.append((address, pointer))
        return entries

    @staticmethod
    def _as_pointer(value) -> PtrVal | None:
        if isinstance(value, PtrVal) and value.tag and value.obj is not None:
            return value
        if isinstance(value, IntVal) and value.provenance is not None:
            origin = value.provenance.pointer
            if origin.tag and origin.obj is not None:
                return origin
        return None

    def trace(self, extra_roots: list[PtrVal] | None = None) -> tuple[set[int], int]:
        """Return the uids of every reachable object and the root count."""
        roots: list[PtrVal] = [ptr for ptr in self.machine.globals.values()]
        roots.extend(extra_roots or [])
        reachable: set[int] = set()
        worklist: list[HeapObject] = []
        for root in roots:
            if isinstance(root, PtrVal) and root.obj is not None:
                if root.obj.uid not in reachable:
                    reachable.add(root.obj.uid)
                    worklist.append(root.obj)
        while worklist:
            current = worklist.pop()
            for _, pointer in self._pointer_entries_in(current):
                target = pointer.obj
                if target is not None and target.uid not in reachable and not target.freed:
                    reachable.add(target.uid)
                    worklist.append(target)
        return reachable, len(roots)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, extra_roots: list[PtrVal] | None = None, *, relocate: bool = False) -> CollectionStats:
        """Run a full collection; optionally compact the survivors."""
        reachable, root_count = self.trace(extra_roots)
        stats = CollectionStats(roots=root_count)
        allocator = self.machine.allocator
        for obj in list(allocator.objects.values()):
            if obj.kind != "heap" or obj.freed:
                continue
            if obj.uid in reachable:
                stats.live_objects += 1
            else:
                allocator.free(obj)
                stats.swept_objects += 1
                stats.swept_bytes += obj.size
        if relocate:
            self._relocate_survivors(reachable, extra_roots or [], stats)
        return stats

    # ------------------------------------------------------------------
    # Relocation
    # ------------------------------------------------------------------

    def _relocate_survivors(self, reachable: set[int], extra_roots: list[PtrVal],
                            stats: CollectionStats) -> None:
        allocator = self.machine.allocator
        memory = self.machine.memory
        survivors = [obj for obj in allocator.objects.values()
                     if obj.kind == "heap" and not obj.freed and obj.uid in reachable]
        forwarding: dict[int, tuple[HeapObject, HeapObject]] = {}
        for old in sorted(survivors, key=lambda o: o.base):
            new = allocator.allocate_heap(old.size, alignment=max(16, self.machine.model.pointer_align))
            data = memory.read_bytes(old.base, old.size)
            memory.write_bytes(new.base, data)
            delta = new.base - old.base
            # Range query via the page index: O(entries in the object), and
            # correct for metadata at any alignment.
            shadow = self.machine.shadow
            moved_shadow = shadow.entries_in_range(old.base, old.top)
            for address, _ in moved_shadow:
                shadow.pop(address)
            for address, value in moved_shadow:
                shadow.set(address + delta, value)
            old.forwarded_to = new.base
            allocator.free(old)
            forwarding[old.uid] = (old, new)
            stats.relocated_objects += 1
            stats.relocated_bytes += old.size
        if not forwarding:
            return
        stats.rewritten_references += self._rewrite_references(forwarding, extra_roots)

    def _rewrite_references(self, forwarding: dict[int, tuple[HeapObject, HeapObject]],
                            extra_roots: list[PtrVal]) -> int:
        rewritten = 0

        def fix(pointer: PtrVal) -> PtrVal | None:
            if pointer.obj is None or pointer.obj.uid not in forwarding:
                return None
            old, new = forwarding[pointer.obj.uid]
            delta = new.base - old.base
            return PtrVal(address=pointer.address + delta, base=new.base, length=new.size,
                          obj=new, perms=pointer.perms, tag=pointer.tag, checked=pointer.checked)

        for name, pointer in list(self.machine.globals.items()):
            updated = fix(pointer)
            if updated is not None:
                self.machine.globals[name] = updated
                rewritten += 1
        for index, pointer in enumerate(extra_roots):
            updated = fix(pointer)
            if updated is not None:
                extra_roots[index] = updated
                rewritten += 1
        for address, value in list(self.machine.shadow.items()):
            pointer = value if isinstance(value, PtrVal) else None
            if pointer is None:
                continue
            updated = fix(pointer)
            if updated is not None:
                self.machine.shadow[address] = updated
                self.machine.memory.write_bytes(
                    address, updated.address.to_bytes(8, "little")
                )
                rewritten += 1
        return rewritten

"""Survey execution and Table 1 formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.corpus import CorpusGenerator, PackageProfile
from repro.analysis.detector import analyze_source
from repro.analysis.idioms import PAPER_TABLE1, TABLE_IDIOMS, Idiom, PackageSurvey

_COLUMNS = ("DECONST", "CONTAINER", "SUB", "II", "INT", "IA", "MASK", "WIDE")


@dataclass
class SurveyRow:
    """Measured idiom counts for one synthetic package."""

    package: str
    counts: dict[Idiom, int] = field(default_factory=dict)
    expected: dict[Idiom, int] = field(default_factory=dict)
    lines_of_code: int = 0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def expected_total(self) -> int:
        return sum(self.expected.values())

    def matches_expected(self) -> bool:
        """True when every measured count equals the planted count."""
        return all(self.counts.get(idiom, 0) == self.expected.get(idiom, 0)
                   for idiom in TABLE_IDIOMS)


def survey_corpus(*, idiom_scale: float = 0.1, loc_scale: float = 0.01,
                  packages: tuple[str, ...] | None = None) -> list[SurveyRow]:
    """Generate the synthetic corpus and run the detector over every package."""
    rows: list[SurveyRow] = []
    selected = {name for name in packages} if packages else None
    for paper in PAPER_TABLE1:
        if selected is not None and paper.package not in selected:
            continue
        profile = PackageProfile(name=paper.package, survey=paper,
                                 idiom_scale=idiom_scale, loc_scale=loc_scale)
        source = CorpusGenerator(profile).generate()
        analysis = analyze_source(source, pointer_bytes=8)
        row = SurveyRow(
            package=paper.package,
            counts={idiom: analysis.count(idiom) for idiom in TABLE_IDIOMS},
            expected={idiom: profile.scaled_count(idiom) for idiom in TABLE_IDIOMS},
            lines_of_code=analysis.lines_of_code,
        )
        rows.append(row)
    return rows


def format_table1(rows: list[SurveyRow], *, include_paper: bool = True) -> str:
    """Render the survey results in the layout of the paper's Table 1."""
    paper_by_name = {row.package: row for row in PAPER_TABLE1}
    header = f"{'PROGRAM':<14}" + "".join(f"{c:>10}" for c in _COLUMNS) + f"{'LOC':>10}"
    lines = [header, "-" * len(header)]
    totals = {idiom: 0 for idiom in TABLE_IDIOMS}
    paper_totals = {idiom: 0 for idiom in TABLE_IDIOMS}
    total_loc = 0
    for row in rows:
        measured = "".join(f"{row.counts.get(idiom, 0):>10}" for idiom in TABLE_IDIOMS)
        lines.append(f"{row.package:<14}{measured}{row.lines_of_code:>10}")
        if include_paper and row.package in paper_by_name:
            paper: PackageSurvey = paper_by_name[row.package]
            reference = "".join(f"{paper.count(idiom):>10}" for idiom in TABLE_IDIOMS)
            lines.append(f"{'  (paper)':<14}{reference}{paper.loc:>10}")
            for idiom in TABLE_IDIOMS:
                paper_totals[idiom] += paper.count(idiom)
        for idiom in TABLE_IDIOMS:
            totals[idiom] += row.counts.get(idiom, 0)
        total_loc += row.lines_of_code
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':<14}" + "".join(f"{totals[idiom]:>10}" for idiom in TABLE_IDIOMS)
                 + f"{total_loc:>10}")
    if include_paper:
        lines.append(f"{'TOTAL (paper)':<14}"
                     + "".join(f"{paper_totals[idiom]:>10}" for idiom in TABLE_IDIOMS)
                     + f"{sum(r.loc for r in PAPER_TABLE1):>10}")
    return "\n".join(lines)

"""Survey execution and table formatting (Table 1, and Table 5's matrix).

Table 1 is the paper's idiom survey over the synthetic corpus.  Table 5 is
this reproduction's extension of the paper's Table 3: instead of eight
hand-extracted idiom test cases, machine-generated programs from
:mod:`repro.difftest` are executed under every memory model and each
(program, model) outcome is classified against the PDP-11 baseline.  The
formatter lives here — next to the other report renderers — so the
differential subsystem stays a producer of plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.corpus import CorpusGenerator, PackageProfile
from repro.analysis.detector import analyze_source
from repro.analysis.idioms import PAPER_TABLE1, TABLE_IDIOMS, Idiom, PackageSurvey

_COLUMNS = ("DECONST", "CONTAINER", "SUB", "II", "INT", "IA", "MASK", "WIDE")


@dataclass
class SurveyRow:
    """Measured idiom counts for one synthetic package."""

    package: str
    counts: dict[Idiom, int] = field(default_factory=dict)
    expected: dict[Idiom, int] = field(default_factory=dict)
    lines_of_code: int = 0

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def expected_total(self) -> int:
        return sum(self.expected.values())

    def matches_expected(self) -> bool:
        """True when every measured count equals the planted count."""
        return all(self.counts.get(idiom, 0) == self.expected.get(idiom, 0)
                   for idiom in TABLE_IDIOMS)


def survey_corpus(*, idiom_scale: float = 0.1, loc_scale: float = 0.01,
                  packages: tuple[str, ...] | None = None) -> list[SurveyRow]:
    """Generate the synthetic corpus and run the detector over every package."""
    rows: list[SurveyRow] = []
    selected = {name for name in packages} if packages else None
    for paper in PAPER_TABLE1:
        if selected is not None and paper.package not in selected:
            continue
        profile = PackageProfile(name=paper.package, survey=paper,
                                 idiom_scale=idiom_scale, loc_scale=loc_scale)
        source = CorpusGenerator(profile).generate()
        analysis = analyze_source(source, pointer_bytes=8)
        row = SurveyRow(
            package=paper.package,
            counts={idiom: analysis.count(idiom) for idiom in TABLE_IDIOMS},
            expected={idiom: profile.scaled_count(idiom) for idiom in TABLE_IDIOMS},
            lines_of_code=analysis.lines_of_code,
        )
        rows.append(row)
    return rows


def format_table1(rows: list[SurveyRow], *, include_paper: bool = True) -> str:
    """Render the survey results in the layout of the paper's Table 1."""
    paper_by_name = {row.package: row for row in PAPER_TABLE1}
    header = f"{'PROGRAM':<14}" + "".join(f"{c:>10}" for c in _COLUMNS) + f"{'LOC':>10}"
    lines = [header, "-" * len(header)]
    totals = {idiom: 0 for idiom in TABLE_IDIOMS}
    paper_totals = {idiom: 0 for idiom in TABLE_IDIOMS}
    total_loc = 0
    for row in rows:
        measured = "".join(f"{row.counts.get(idiom, 0):>10}" for idiom in TABLE_IDIOMS)
        lines.append(f"{row.package:<14}{measured}{row.lines_of_code:>10}")
        if include_paper and row.package in paper_by_name:
            paper: PackageSurvey = paper_by_name[row.package]
            reference = "".join(f"{paper.count(idiom):>10}" for idiom in TABLE_IDIOMS)
            lines.append(f"{'  (paper)':<14}{reference}{paper.loc:>10}")
            for idiom in TABLE_IDIOMS:
                paper_totals[idiom] += paper.count(idiom)
        for idiom in TABLE_IDIOMS:
            totals[idiom] += row.counts.get(idiom, 0)
        total_loc += row.lines_of_code
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':<14}" + "".join(f"{totals[idiom]:>10}" for idiom in TABLE_IDIOMS)
                 + f"{total_loc:>10}")
    if include_paper:
        lines.append(f"{'TOTAL (paper)':<14}"
                     + "".join(f"{paper_totals[idiom]:>10}" for idiom in TABLE_IDIOMS)
                     + f"{sum(r.loc for r in PAPER_TABLE1):>10}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 5: the differential-execution matrix
# ---------------------------------------------------------------------------

#: compressed outcome letters for the per-feature breakdown.
_FEATURE_LETTER = {"agree": "A", "agree-trap": "A", "benign": "B", "corrupt": "C"}


def _letter(category: str) -> str:
    if category in _FEATURE_LETTER:
        return _FEATURE_LETTER[category]
    if category.startswith("trap:"):
        return "T"
    return "O"


def format_table5(summary: dict[str, dict[str, int]], features: dict, *,
                  meta: dict, category_order: tuple[str, ...]) -> str:
    """Render a differential sweep as the Table-5 matrix.

    ``summary`` is ``{model: {category: count}}``, ``features`` is
    ``{feature: {model: {category: count}}}`` (both as produced by
    :mod:`repro.difftest.oracle`); ``meta`` carries seed/count/budget and the
    model order of the sweep.  Only observed categories get columns, so the
    service-quarantine cells (``error:engine``/``error:timeout``) appear
    exactly when a sharded sweep actually quarantined a program — a
    fault-free matrix is rendered identically by serial and sharded runs.
    """
    models = list(meta.get("models") or summary)
    seen = {category for model in models for category in summary.get(model, {})}
    observed = [category for category in category_order if category in seen]
    # never silently drop a count: categories outside the canonical order
    # (future trap causes) are appended rather than hidden
    observed += sorted(seen.difference(category_order))
    count = meta.get("count", "?")
    lines = [
        f"Table 5: differential execution of {count} generated mini-C programs "
        f"under {len(models)} memory models",
        f"seed={meta.get('seed')}  budget={meta.get('budget')} instructions/run  "
        f"generator=v{meta.get('generator_version')}  baseline={meta.get('baseline', 'pdp11')}",
        "(each cell: programs whose outcome vs the baseline falls in the category)",
        "",
    ]
    labels = [category.replace("trap:", "t:") for category in observed]
    width = max([10] + [len(label) + 2 for label in labels])
    header = f"{'MODEL':<12}" + "".join(f"{label:>{width}}" for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for model in models:
        row = summary.get(model, {})
        cells = "".join(f"{row.get(category, 0):>{width}}" for category in observed)
        lines.append(f"{model:<12}{cells}")
    lines.append("")
    lines.append("Outcome mix by generator feature "
                 "(A=agree, T=trap, C=silent-corruption, B=benign-difference, O=other):")
    lines.append("")
    rows: dict[str, list[str]] = {}
    for feature in sorted(features):
        cells = []
        for model in models:
            counts: dict[str, int] = {}
            for category, n in features[feature].get(model, {}).items():
                letter = _letter(category)
                counts[letter] = counts.get(letter, 0) + n
            cells.append("/".join(f"{counts[letter]}{letter}"
                                  for letter in ("A", "T", "C", "B", "O")
                                  if letter in counts))
        rows[feature] = cells
    widths = [max([len(model)] + [cells[i] and len(cells[i]) or 0
                                  for cells in rows.values()]) + 2
              for i, model in enumerate(models)]
    fheader = f"{'FEATURE':<18}" + "".join(f"{model:>{widths[i]}}"
                                           for i, model in enumerate(models))
    lines.append(fheader)
    lines.append("-" * len(fheader))
    for feature, cells in rows.items():
        lines.append(f"{feature:<18}" + "".join(f"{cell:>{widths[i]}}"
                                                for i, cell in enumerate(cells)))
    return "\n".join(lines)

"""The idiom taxonomy and the paper's published survey numbers.

The eight idioms are the ones §2 of the paper identifies as "difficult for
memory-safe implementations to support".  ``PAPER_TABLE1`` records Table 1
verbatim (counts per package, plus lines of code), so the reproduction's
survey benchmark can print paper-vs-measured side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Idiom(enum.Enum):
    """The problematic C idioms of Table 1."""

    DECONST = "deconst"
    CONTAINER = "container"
    SUB = "sub"
    II = "ii"
    INT = "int"
    IA = "ia"
    MASK = "mask"
    WIDE = "wide"
    LAST_WORD = "last_word"


#: column order used by Table 1 and Table 3 in the paper.
TABLE_IDIOMS = (
    Idiom.DECONST,
    Idiom.CONTAINER,
    Idiom.SUB,
    Idiom.II,
    Idiom.INT,
    Idiom.IA,
    Idiom.MASK,
    Idiom.WIDE,
)


IDIOM_DESCRIPTIONS: dict[Idiom, str] = {
    Idiom.DECONST: "Removing the const qualifier from a pointer",
    Idiom.CONTAINER: "Recovering a pointer to an enclosing structure from a member pointer "
                     "(the container_of macro)",
    Idiom.SUB: "Arbitrary pointer subtraction",
    Idiom.II: "Pointer arithmetic with out-of-bounds intermediate results",
    Idiom.INT: "Storing a pointer in an integer variable in memory",
    Idiom.IA: "Integer arithmetic on pointer values",
    Idiom.MASK: "Masking pointers (e.g. stashing flags in low bits)",
    Idiom.WIDE: "Storing a pointer in an integer of a smaller size",
    Idiom.LAST_WORD: "Word-sized accesses that run past the end of an object "
                     "(FreeBSD libc strlen optimisation; not found by static analysis)",
}


@dataclass(frozen=True)
class PackageSurvey:
    """One row of Table 1."""

    package: str
    deconst: int
    container: int
    sub: int
    ii: int
    int_: int
    ia: int
    mask: int
    wide: int
    loc: int

    def count(self, idiom: Idiom) -> int:
        mapping = {
            Idiom.DECONST: self.deconst,
            Idiom.CONTAINER: self.container,
            Idiom.SUB: self.sub,
            Idiom.II: self.ii,
            Idiom.INT: self.int_,
            Idiom.IA: self.ia,
            Idiom.MASK: self.mask,
            Idiom.WIDE: self.wide,
        }
        return mapping.get(idiom, 0)

    @property
    def total(self) -> int:
        return sum(self.count(idiom) for idiom in TABLE_IDIOMS)


#: Table 1 of the paper, verbatim.
PAPER_TABLE1: tuple[PackageSurvey, ...] = (
    PackageSurvey("ffmpeg", 150, 0, 800, 4, 0, 0, 4, 0, 693_010),
    PackageSurvey("libX11", 117, 0, 19, 9, 1, 0, 0, 5, 120_386),
    PackageSurvey("FreeBSD libc", 288, 0, 216, 2, 13, 50, 184, 17, 136_717),
    PackageSurvey("bash", 43, 0, 207, 11, 0, 0, 15, 4, 109_250),
    PackageSurvey("libpng", 20, 0, 175, 1, 0, 0, 0, 0, 50_071),
    PackageSurvey("tcpdump", 579, 0, 9, 1299, 0, 0, 0, 0, 66_555),
    PackageSurvey("perf", 575, 151, 46, 0, 53, 151, 31, 4, 52_033),
    PackageSurvey("pmc", 2, 0, 0, 0, 18, 0, 0, 0, 8_886),
    PackageSurvey("pcre", 98, 0, 52, 0, 0, 0, 0, 0, 70_447),
    PackageSurvey("python", 494, 0, 358, 1, 109, 0, 131, 8, 383_813),
    PackageSurvey("wget", 55, 0, 61, 0, 3, 0, 1, 10, 91_710),
    PackageSurvey("zlib", 4, 0, 24, 0, 0, 0, 0, 0, 21_090),
    PackageSurvey("zsh", 29, 0, 267, 0, 0, 0, 5, 5, 98_664),
)

#: The TOTAL row of Table 1.
PAPER_TABLE1_TOTAL = PackageSurvey("TOTAL", 2491, 151, 2236, 1557, 197, 201, 371, 53, 1_902_632)


def paper_row(package: str) -> PackageSurvey:
    """Look up a Table 1 row by package name."""
    for row in PAPER_TABLE1:
        if row.package == package:
            return row
    raise KeyError(f"package {package!r} is not part of the paper's survey")

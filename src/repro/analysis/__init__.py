"""Static idiom analysis (the paper's §2 survey, Table 1).

The paper modified Clang/LLVM to flag pointer operations that assume the
PDP-11 memory model — pointer/integer round trips, arbitrary pointer
subtraction, const-stripping and friends — and ran it over ~1.9M lines of
popular C packages.  This package reproduces that methodology over mini-C:

* :mod:`repro.analysis.idioms` — the taxonomy (DECONST, CONTAINER, SUB, II,
  INT, IA, MASK, WIDE) and the paper's published per-package counts;
* :mod:`repro.analysis.detector` — an IR-level detector that categorises the
  pointer operations that survive optimization;
* :mod:`repro.analysis.corpus` — a synthetic corpus generator whose 13
  packages mirror the idiom-density profiles of the paper's survey targets;
* :mod:`repro.analysis.report` — table formatting for the Table 1 benchmark.
"""

from repro.analysis.idioms import Idiom, IDIOM_DESCRIPTIONS, PAPER_TABLE1, PAPER_TABLE1_TOTAL
from repro.analysis.detector import IdiomDetector, IdiomFinding, analyze_module, analyze_source
from repro.analysis.corpus import CorpusGenerator, PackageProfile, PACKAGE_PROFILES
from repro.analysis.report import format_table1, survey_corpus

__all__ = [
    "Idiom",
    "IDIOM_DESCRIPTIONS",
    "PAPER_TABLE1",
    "PAPER_TABLE1_TOTAL",
    "IdiomDetector",
    "IdiomFinding",
    "analyze_module",
    "analyze_source",
    "CorpusGenerator",
    "PackageProfile",
    "PACKAGE_PROFILES",
    "format_table1",
    "survey_corpus",
]

"""IR-level idiom detection.

The detector mirrors the paper's modified LLVM: it inspects the typed IR of a
compiled module (after optimization, so idioms that a compiler would fold
away are not counted) and categorises every pointer operation that escapes
the type-safe ``gep``/``field`` discipline.

Detection rules (documented per idiom):

* **DECONST** — a ``bitcast`` whose attributes record that a ``const``
  qualifier was dropped.
* **SUB** — a ``ptrdiff`` (pointer minus pointer), or a ``gep`` whose index
  is a negative constant that is not part of a container-of pattern.
* **CONTAINER** — a ``gep`` with a negative constant index whose result is
  immediately reinterpreted (``bitcast``) as a pointer to a struct: the
  container_of shape.
* **II** — a ``gep`` from a stack or global object whose constant index
  provably lands outside the object.
* **INT** — a ``ptrtoint`` whose full-width result is stored to memory (and
  not arithmetically modified anywhere — a dual-use value is IA, not INT).
* **IA** — integer arithmetic (other than pure masking) on a value derived
  from a ``ptrtoint``.
* **MASK** — ``&``/``|`` of a pointer-derived integer with a constant.
* **WIDE** — a pointer value narrowed below the pointer width (direct narrow
  ``ptrtoint`` or a narrowing ``intcast`` of a pointer-derived value).

INT, IA, MASK and WIDE are *flow-sensitive*: pointer-derivedness is a
dataflow fact propagated to a fixpoint through casts, arithmetic results and
stack-slot round trips (store to a local, load back), not a one-hop pattern
match on the ``ptrtoint`` instruction's direct consumers.  The fixpoint also
makes the INT/IA split order-independent: whether a stored-and-modified
value's store appears before or after the arithmetic in the IR, the
classification is the same (IA; the store of a dual-use value is not a
separate INT finding).  See ``docs/staticcheck.md`` for the shared dataflow
machinery.

The counts are indicative rather than exact — the same caveat the paper makes
about its own machine-assisted categorisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.idioms import Idiom
from repro.minic.ir import Const, Function, GlobalRef, Instr, Module, Opcode, Temp
from repro.minic.irgen import compile_source
from repro.minic.optimizer import optimize_module
from repro.minic.typesys import IntType, PointerType, StructType


@dataclass(frozen=True)
class IdiomFinding:
    """One detected idiom instance."""

    idiom: Idiom
    function: str
    line: int
    detail: str = ""


@dataclass
class AnalysisResult:
    """All findings for one module, with convenience counters."""

    findings: list[IdiomFinding] = field(default_factory=list)
    lines_of_code: int = 0

    def count(self, idiom: Idiom) -> int:
        return sum(1 for finding in self.findings if finding.idiom == idiom)

    def counts(self) -> dict[Idiom, int]:
        out: dict[Idiom, int] = {}
        for finding in self.findings:
            out[finding.idiom] = out.get(finding.idiom, 0) + 1
        return out

    @property
    def total(self) -> int:
        return len(self.findings)


class IdiomDetector:
    """Scans a module's IR for the Table 1 idioms."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.result = AnalysisResult(lines_of_code=module.source_line_count)

    # ------------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        for function in self.module.functions.values():
            self._analyze_function(function)
        return self.result

    # ------------------------------------------------------------------

    def _analyze_function(self, function: Function) -> None:
        defs: dict[int, Instr] = {
            instr.dest.index: instr for instr in function.instrs if instr.dest is not None
        }
        users: dict[int, list[Instr]] = {}
        for instr in function.instrs:
            for arg in instr.args:
                if isinstance(arg, Temp):
                    users.setdefault(arg.index, []).append(instr)
        derived = self._pointer_derived(function)

        for instr in function.instrs:
            if instr.op is Opcode.BITCAST and instr.attrs.get("deconst"):
                self._record(Idiom.DECONST, function, instr, "const qualifier removed by cast")
            elif instr.op is Opcode.PTRDIFF:
                self._record(Idiom.SUB, function, instr, "pointer subtraction")
            elif instr.op is Opcode.GEP:
                self._analyze_gep(function, instr, users, defs)
            elif instr.op is Opcode.PTRTOINT:
                self._analyze_ptrtoint(function, instr)
            elif instr.op is Opcode.BINOP:
                self._analyze_binop(function, instr, derived)
            elif instr.op is Opcode.INTCAST:
                self._analyze_intcast(function, instr, derived)

    # ------------------------------------------------------------------

    def _record(self, idiom: Idiom, function: Function, instr: Instr, detail: str) -> None:
        self.result.findings.append(
            IdiomFinding(idiom=idiom, function=function.name, line=instr.line, detail=detail)
        )

    def _analyze_gep(self, function: Function, instr: Instr, users, defs) -> None:
        index = instr.args[1] if len(instr.args) > 1 else None
        constant_index = index.value if isinstance(index, Const) else None
        negated = self._negated_constant(index, defs)
        if constant_index is None and negated is not None:
            constant_index = -negated
        if constant_index is not None and constant_index >= (1 << 63):
            # An unsigned fold of a negated offset: reinterpret as signed.
            constant_index -= 1 << 64
        if constant_index is not None and constant_index < 0:
            if self._feeds_struct_bitcast(instr, users):
                self._record(Idiom.CONTAINER, function, instr,
                             "negative member offset recast to an enclosing struct")
            else:
                self._record(Idiom.SUB, function, instr, "pointer moved backwards by a constant")
            return
        if constant_index is not None and constant_index > 0:
            object_size = self._base_object_size(instr.args[0], defs)
            element_size = instr.attrs.get("element_size", 1)
            if object_size is not None and constant_index * element_size > object_size:
                self._record(Idiom.II, function, instr,
                             f"intermediate {constant_index * element_size} bytes past a "
                             f"{object_size}-byte object")

    def _analyze_ptrtoint(self, function: Function, instr: Instr) -> None:
        width = instr.attrs.get("target_bytes", 8)
        pointer_width = self.module.context.pointer_bytes if self.module.context else 8
        if width < min(pointer_width, 8):
            self._record(Idiom.WIDE, function, instr,
                         f"pointer narrowed to a {width}-byte integer")
            return
        store = self._unmodified_store(function, instr)
        if store is not None:
            self._record(Idiom.INT, function, store, "pointer stored in an integer variable")

    def _analyze_binop(self, function: Function, instr: Instr, derived) -> None:
        pdi, _ = derived
        if not any(isinstance(arg, Temp) and arg.index in pdi for arg in instr.args):
            return
        operator = instr.attrs.get("operator")
        constant = next((arg for arg in instr.args if isinstance(arg, Const)), None)
        if operator in ("&", "|") and constant is not None:
            self._record(Idiom.MASK, function, instr, f"pointer masked with {constant.value:#x}")
        else:
            self._record(Idiom.IA, function, instr,
                         f"integer arithmetic ({operator}) on a pointer value")

    def _analyze_intcast(self, function: Function, instr: Instr, derived) -> None:
        source_bytes = instr.attrs.get("source_bytes", 8)
        target_bytes = instr.attrs.get("target_bytes", 8)
        if target_bytes >= source_bytes or target_bytes >= 8:
            return
        pdi, _ = derived
        origin = instr.args[0]
        if isinstance(origin, Temp) and origin.index in pdi:
            self._record(Idiom.WIDE, function, instr,
                         f"pointer-derived value narrowed to {target_bytes} bytes")

    # ------------------------------------------------------------------
    # pointer-derived dataflow (shared fact base for INT/IA/MASK/WIDE)
    # ------------------------------------------------------------------

    @staticmethod
    def _slot_roots(function: Function) -> set[int]:
        return {instr.dest.index for instr in function.instrs
                if instr.op is Opcode.ALLOCA and instr.dest is not None}

    def _pointer_derived(self, function: Function) -> tuple[set[int], set[int]]:
        """Fixpoint of the *pointer-derived integer* fact.

        Seeds at every full-width ``ptrtoint`` and propagates through
        arithmetic results, value-preserving casts, and stack-slot round
        trips (a store of a derived value taints the slot; integer loads
        from a tainted slot are derived).  Narrowing below the pointer
        width drops the fact — the value can no longer round-trip a
        pointer, and the narrowing itself is counted as WIDE.
        """
        pointer_width = self.module.context.pointer_bytes if self.module.context else 8
        full_width = min(pointer_width, 8)
        slots = self._slot_roots(function)
        pdi: set[int] = set()
        pdi_slots: set[int] = set()
        changed = True
        while changed:
            changed = False
            for instr in function.instrs:
                dest = instr.dest.index if instr.dest is not None else None
                op = instr.op
                if op is Opcode.PTRTOINT:
                    if dest is not None and dest not in pdi \
                            and instr.attrs.get("target_bytes", 8) >= full_width:
                        pdi.add(dest)
                        changed = True
                elif op in (Opcode.BINOP, Opcode.UNOP):
                    if dest is not None and dest not in pdi and any(
                            isinstance(arg, Temp) and arg.index in pdi
                            for arg in instr.args):
                        pdi.add(dest)
                        changed = True
                elif op is Opcode.INTCAST:
                    if dest is not None and dest not in pdi \
                            and instr.attrs.get("target_bytes", 8) >= 8 \
                            and isinstance(instr.args[0], Temp) \
                            and instr.args[0].index in pdi:
                        pdi.add(dest)
                        changed = True
                elif op is Opcode.LOAD:
                    if dest is not None and dest not in pdi \
                            and isinstance(instr.ctype, IntType) \
                            and isinstance(instr.args[0], Temp) \
                            and instr.args[0].index in pdi_slots:
                        pdi.add(dest)
                        changed = True
                elif op is Opcode.STORE and len(instr.args) > 1:
                    address, value = instr.args[0], instr.args[1]
                    if isinstance(address, Temp) and address.index in slots \
                            and isinstance(value, Temp) and value.index in pdi \
                            and address.index not in pdi_slots:
                        pdi_slots.add(address.index)
                        changed = True
        return pdi, pdi_slots

    def _unmodified_store(self, function: Function, source: Instr) -> Instr | None:
        """The first store of this ``ptrtoint``'s *unmodified* result, or
        None when there is none — or when the value is arithmetically
        modified anywhere (dual use is IA, not INT, regardless of whether
        the store or the arithmetic comes first in the IR)."""
        if source.dest is None:
            return None
        slots = self._slot_roots(function)
        reach = {source.dest.index}
        reach_slots: set[int] = set()
        changed = True
        while changed:
            changed = False
            for instr in function.instrs:
                dest = instr.dest.index if instr.dest is not None else None
                op = instr.op
                if op is Opcode.INTCAST:
                    # Value-preserving casts keep the stored value "the
                    # pointer"; narrowing is a WIDE finding instead.
                    if dest is not None and dest not in reach \
                            and instr.attrs.get("target_bytes", 8) >= 8 \
                            and isinstance(instr.args[0], Temp) \
                            and instr.args[0].index in reach:
                        reach.add(dest)
                        changed = True
                elif op is Opcode.STORE and len(instr.args) > 1:
                    address, value = instr.args[0], instr.args[1]
                    if isinstance(address, Temp) and address.index in slots \
                            and isinstance(value, Temp) and value.index in reach \
                            and address.index not in reach_slots:
                        reach_slots.add(address.index)
                        changed = True
                elif op is Opcode.LOAD:
                    if dest is not None and dest not in reach \
                            and isinstance(instr.ctype, IntType) \
                            and isinstance(instr.args[0], Temp) \
                            and instr.args[0].index in reach_slots:
                        reach.add(dest)
                        changed = True
        for instr in function.instrs:
            if instr.op is Opcode.BINOP and any(
                    isinstance(arg, Temp) and arg.index in reach
                    for arg in instr.args):
                return None
        for instr in function.instrs:
            if instr.op is Opcode.STORE and len(instr.args) > 1 \
                    and isinstance(instr.args[1], Temp) \
                    and instr.args[1].index in reach:
                return instr
        return None

    # ------------------------------------------------------------------
    # small def-use helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _negated_constant(operand, defs) -> int | None:
        """If ``operand`` is ``neg(constant)``, return the constant."""
        if isinstance(operand, Temp):
            producer = defs.get(operand.index)
            if producer is not None and producer.op is Opcode.UNOP \
                    and producer.attrs.get("operator") == "neg" \
                    and producer.args and isinstance(producer.args[0], Const):
                return producer.args[0].value
        return None

    def _feeds_struct_bitcast(self, instr: Instr, users) -> bool:
        if instr.dest is None:
            return False
        for consumer in users.get(instr.dest.index, []):
            if consumer.op is Opcode.BITCAST and isinstance(consumer.ctype, PointerType) \
                    and isinstance(consumer.ctype.pointee, StructType):
                return True
        return False

    def _base_object_size(self, operand, defs) -> int | None:
        """Size of the object a GEP base refers to, when statically known."""
        if isinstance(operand, GlobalRef):
            var = self.module.globals.get(operand.name)
            if var is not None and self.module.context is not None:
                return var.ctype.size(self.module.context)
            return None
        if isinstance(operand, Temp):
            producer = defs.get(operand.index)
            if producer is None:
                return None
            if producer.op is Opcode.ALLOCA:
                return producer.attrs.get("size")
            if producer.op is Opcode.GEP and producer.attrs.get("decay"):
                return self._base_object_size(producer.args[0], defs)
        return None


def analyze_module(module: Module) -> AnalysisResult:
    """Run the detector over an already-compiled module."""
    return IdiomDetector(module).analyze()


def analyze_source(source: str, *, pointer_bytes: int = 8, optimize: bool = True) -> AnalysisResult:
    """Compile mini-C source and analyze it (the paper's survey pipeline)."""
    module = compile_source(source, pointer_bytes=pointer_bytes)
    if optimize:
        optimize_module(module)
    return analyze_module(module)
